//! End-to-end serving: one `ForceServer` driving real pooled `Force`
//! sessions and language `Engine`s under fault injection, deadlines,
//! and overload.  The soak test pushes >1k mixed jobs through a single
//! server and checks the isolation contract job by job: no shared-memory
//! bleed, no stats bleed, no trace bleed, retries recover every
//! transient fault, deterministic errors never retry, and the pool is
//! still healthy when the server is gone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use the_force::core::{Force, ForcePool};
use the_force::fortran::{Engine, Value};
use the_force::machdep::{
    FaultInjection, ForceServer, JobError, JobOutcome, JobRunner, JobSpec, JobYield, Machine,
    MachineId, Priority, RunOptions, ServerConfig, Submit, TraceConfig,
};
use the_force::prep::preprocess;
use the_force::ForceError;

const NPROC: usize = 4;

/// `1 + 2 + ... + nproc`: what each compute job's cell must equal.
const CELL_SUM: u64 = (NPROC as u64 * (NPROC as u64 + 1)) / 2;

const LANG_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Critical L
      N = N + 1
      End critical
      Join
";

/// Deterministic runtime error: subscript out of bounds on every run.
const BAD_SUBSCRIPT_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(4)
      Private INTEGER K
      End declarations
      K = 5
      A(K) = 1
      Join
";

/// A long barrier loop: enough cancellable waits that a deadline trip
/// tears the run down long before it finishes on its own.
const SLOW_LANG_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      DO 100 K = 1, 50000
      Barrier
      N = N + 1
      End barrier
100   CONTINUE
      Join
";

fn expect_admitted(submit: Submit) -> the_force::machdep::JobHandle {
    match submit {
        Submit::Admitted(h) => h,
        Submit::Rejected { reason } => panic!("unexpected rejection: {reason}"),
    }
}

#[test]
fn soak_mixed_jobs_with_injection_and_no_cross_job_leakage() {
    let machine = Machine::new(MachineId::Flex32);
    let pool = Arc::new(ForcePool::new(NPROC, machine.stats()));
    let server = ForceServer::new(
        ServerConfig {
            tenant_queue_capacity: 2048,
            shed_watermark: 4096,
            retry_base: Duration::from_micros(50),
            ..ServerConfig::default()
        },
        machine.stats(),
    );

    let force =
        Arc::new(Force::with_machine(NPROC, Arc::clone(&machine)).with_pool(Arc::clone(&pool)));
    let traced_force =
        Arc::new(Force::with_machine(NPROC, Arc::clone(&machine)).with_pool(Arc::clone(&pool)));
    let lang = Arc::new(
        Engine::from_expanded(
            &preprocess(LANG_PROGRAM, MachineId::Flex32).unwrap(),
            Arc::clone(&machine),
        )
        .unwrap(),
    );
    lang.set_pool(Arc::clone(&pool));
    let bad = Arc::new(
        Engine::from_expanded(
            &preprocess(BAD_SUBSCRIPT_PROGRAM, MachineId::Flex32).unwrap(),
            Arc::clone(&machine),
        )
        .unwrap(),
    );
    bad.set_pool(Arc::clone(&pool));

    const COMPUTE: usize = 400;
    const TRACED: usize = 60;
    const FLAKY: usize = 300;
    const ONCE: usize = 40;
    const LANG: usize = 200;
    const DETERR: usize = 40;
    const TOTAL: u64 = (COMPUTE + TRACED + FLAKY + ONCE + LANG + DETERR) as u64;
    const _: () = assert!(TOTAL >= 1000, "soak must push at least 1k jobs");

    // Tenant "compute": each job gets a private result cell; every
    // process adds pid+1 between two barriers.  A cell not equal to
    // CELL_SUM afterwards would mean another job's processes wrote into
    // this job's shared state.
    let mut compute_cells = Vec::with_capacity(COMPUTE);
    let mut compute_handles = Vec::with_capacity(COMPUTE);
    for _ in 0..COMPUTE {
        let cell = Arc::new(AtomicU64::new(0));
        compute_cells.push(Arc::clone(&cell));
        let runner = force.serve_runner(RunOptions::default(), move |p| {
            p.barrier();
            cell.fetch_add(p.pid() as u64 + 1, Ordering::Relaxed);
            p.barrier();
        });
        compute_handles.push(expect_admitted(
            server.submit(JobSpec::for_tenant("compute"), runner),
        ));
    }

    // Tenant "traced": barrier-heavy traced jobs first, then one final
    // critical-only traced job.  The tenant rollup keeps the most recent
    // traced profile; if per-job trace isolation leaked, the barrier
    // episodes of the earlier jobs (same session, same sink) would show
    // up in the final job's profile.
    let traced_options = RunOptions {
        trace: Some(TraceConfig::default()),
        ..RunOptions::default()
    };
    let mut traced_handles = Vec::with_capacity(TRACED);
    for _ in 0..TRACED - 1 {
        let runner = traced_force.serve_runner(traced_options, |p| {
            p.barrier();
            p.barrier();
        });
        traced_handles.push(expect_admitted(server.submit(
            JobSpec::for_tenant("traced").with_priority(Priority::High),
            runner,
        )));
    }
    let runner = traced_force.serve_runner(traced_options, |p| {
        p.critical("SOAK", || ());
    });
    traced_handles.push(expect_admitted(server.submit(
        JobSpec::for_tenant("traced").with_priority(Priority::High),
        runner,
    )));

    // Tenant "flaky": low-probability injected panics with a retry
    // budget.  The facade re-derives the injection seed per attempt, so
    // every injected fault is recoverable; all 300 must complete.
    let mut flaky_handles = Vec::with_capacity(FLAKY);
    for j in 0..FLAKY {
        let mut injection = FaultInjection::with_seed(0xf1a6 + j as u64);
        injection.panic_per_mille = 10;
        let options = RunOptions {
            injection: Some(injection),
            ..RunOptions::default()
        };
        let runner = force.serve_runner(options, |p| {
            p.barrier();
            p.barrier();
        });
        flaky_handles.push(expect_admitted(
            server.submit(
                JobSpec::for_tenant("flaky")
                    .with_priority(Priority::Low)
                    .with_max_retries(8),
                runner,
            ),
        ));
    }

    // Tenant "once": a custom runner that injects a certain fault on
    // attempt 0 only — a deterministic transient.  Every job must
    // complete with exactly one retry.
    let mut once_handles = Vec::with_capacity(ONCE);
    for j in 0..ONCE {
        let session = Arc::clone(&force);
        let runner: JobRunner = Box::new(move |cx| {
            cx.bind_plane(session.fault_plane());
            let mut options = RunOptions::default();
            if cx.attempt() == 0 {
                let mut injection = FaultInjection::with_seed(0x0ce + j as u64);
                injection.panic_per_mille = 1000;
                options.injection = Some(injection);
            }
            match session.try_execute_with(options, |p| p.barrier()) {
                Ok(_) => Ok(JobYield::default()),
                Err(fault) => Err(JobError::Fault(fault)),
            }
        });
        once_handles.push(expect_admitted(
            server.submit(
                JobSpec::for_tenant("once")
                    .with_priority(Priority::Low)
                    .with_max_retries(2),
                runner,
            ),
        ));
    }

    // Tenant "lang": interpreter jobs through the shared pool.  Each
    // run's COMMON block must start zeroed — N == nproc on every run or
    // shared memory leaked across jobs.
    let lang_outputs: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut lang_handles = Vec::with_capacity(LANG);
    for _ in 0..LANG {
        let sink = Arc::clone(&lang_outputs);
        let runner = lang.serve_runner(NPROC, RunOptions::default(), move |out| {
            if let Some(Value::Int(n)) = out.shared_scalar("N") {
                sink.lock().unwrap().push(n);
            } else {
                sink.lock().unwrap().push(-1);
            }
        });
        lang_handles.push(expect_admitted(
            server.submit(JobSpec::for_tenant("lang"), runner),
        ));
    }

    // Tenant "deterr": a deterministic interpreter error with a generous
    // retry budget that must never be spent.
    let mut deterr_handles = Vec::with_capacity(DETERR);
    for _ in 0..DETERR {
        let runner = bad.serve_runner(NPROC, RunOptions::default(), |_| ());
        deterr_handles.push(expect_admitted(
            server.submit(
                JobSpec::for_tenant("deterr")
                    .with_priority(Priority::High)
                    .with_max_retries(5),
                runner,
            ),
        ));
    }

    // Drain everything.
    for h in &compute_handles {
        assert!(h.wait().is_success(), "compute job {} failed", h.id());
    }
    for h in &traced_handles {
        assert!(h.wait().is_success(), "traced job {} failed", h.id());
    }
    for h in &flaky_handles {
        let outcome = h.wait();
        assert!(
            outcome.is_success(),
            "flaky job {} did not recover: {outcome:?}",
            h.id()
        );
    }
    for h in &once_handles {
        match h.wait() {
            JobOutcome::Completed { retries } => {
                assert_eq!(retries, 1, "once job {} took a surprising path", h.id())
            }
            other => panic!("once job {} ended {other:?}", h.id()),
        }
    }
    for h in &lang_handles {
        assert!(h.wait().is_success(), "lang job {} failed", h.id());
    }
    for h in &deterr_handles {
        match h.wait() {
            JobOutcome::Faulted { error, retries } => {
                assert_eq!(retries, 0, "deterministic errors must never retry");
                assert!(
                    matches!(error, JobError::Deterministic(_)),
                    "wrong class: {error:?}"
                );
                assert!(error.to_string().contains("outside 1..4"), "{error}");
            }
            other => panic!("deterr job {} ended {other:?}", h.id()),
        }
    }

    // Shared-memory isolation: every compute cell saw exactly its own
    // force's contributions.
    for (j, cell) in compute_cells.iter().enumerate() {
        assert_eq!(cell.load(Ordering::Relaxed), CELL_SUM, "cell {j} polluted");
    }
    // Every language run started from fresh COMMON storage.
    let outputs = lang_outputs.lock().unwrap();
    assert_eq!(outputs.len(), LANG);
    assert!(
        outputs.iter().all(|&n| n == NPROC as i64),
        "a language job saw another job's shared memory: {outputs:?}"
    );
    drop(outputs);

    // Stats isolation: jobs run one at a time, so tenant rollups are
    // exact.  Two barrier episodes per compute job — no more, no less.
    let compute = server.tenant_report("compute").unwrap();
    assert_eq!(compute.completed, COMPUTE as u64);
    assert_eq!(compute.faulted, 0);
    assert_eq!(compute.retries, 0);
    assert_eq!(
        compute.ops.barrier_episodes,
        2 * COMPUTE as u64,
        "compute tenant's stats absorbed another tenant's operations"
    );
    assert_eq!(compute.ops.faults_injected, 0);
    assert_eq!(compute.latency.count(), COMPUTE as u64);

    // Trace isolation: the final traced job ran criticals only; its
    // profile must not contain the earlier jobs' barrier episodes.
    let traced = server.tenant_report("traced").unwrap();
    assert_eq!(traced.completed, TRACED as u64);
    assert_eq!(traced.traced_jobs, TRACED as u64);
    let profile = traced.profile.expect("traced tenant keeps a profile");
    assert!(
        profile.construct("critical").is_some(),
        "final traced job's own construct is missing"
    );
    assert!(
        profile.construct("barrier").is_none(),
        "barrier events from earlier jobs leaked into a later job's trace"
    );

    // Retry accounting: every injected fault recovered, no injected
    // fault was misclassified as deterministic.
    let flaky = server.tenant_report("flaky").unwrap();
    assert_eq!(flaky.completed, FLAKY as u64);
    assert_eq!(flaky.faulted, 0);
    assert!(
        flaky.ops.faults_injected > 0,
        "the soak injected nothing — per-mille too low or injection broken"
    );
    let once = server.tenant_report("once").unwrap();
    assert_eq!(once.completed, ONCE as u64);
    assert_eq!(once.retries, ONCE as u64, "exactly one retry per once job");
    let deterr = server.tenant_report("deterr").unwrap();
    assert_eq!(deterr.faulted, DETERR as u64);
    assert_eq!(deterr.retries, 0);

    // Server-wide accounting balances.
    let report = server.server_report();
    assert_eq!(report.admitted, TOTAL);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(report.deadline_exceeded, 0);
    assert_eq!(report.completed + report.faulted, TOTAL);
    assert_eq!(report.faulted, DETERR as u64);
    assert_eq!(report.latency.count(), TOTAL);
    assert_eq!(report.retries, flaky.retries + once.retries);

    let snap = machine.stats().snapshot();
    assert_eq!(snap.jobs_admitted, TOTAL);
    assert_eq!(snap.job_retries, report.retries);
    assert_eq!(snap.jobs_shed, 0);
    assert_eq!(snap.jobs_deadline_exceeded, 0);
    assert_eq!(snap.watchdog_trips, 0, "the soak must not trip watchdogs");

    // The pool outlives the server: plain pooled runs still work.
    server.shutdown();
    let after = Arc::new(AtomicU64::new(0));
    let after2 = Arc::clone(&after);
    force
        .try_run(move |p| {
            p.barrier();
            after2.fetch_add(p.pid() as u64 + 1, Ordering::Relaxed);
        })
        .expect("pool must stay usable after the server is gone");
    assert_eq!(after.load(Ordering::Relaxed), CELL_SUM);
    let out = lang.run(NPROC).expect("engine must stay usable");
    assert_eq!(out.shared_scalar("N"), Some(Value::Int(NPROC as i64)));
}

#[test]
fn native_deadline_tears_down_a_running_pooled_job() {
    let machine = Machine::new(MachineId::Flex32);
    let pool = Arc::new(ForcePool::new(NPROC, machine.stats()));
    let force =
        Arc::new(Force::with_machine(NPROC, Arc::clone(&machine)).with_pool(Arc::clone(&pool)));
    let server = ForceServer::new(ServerConfig::default(), machine.stats());

    // 100k barriers takes far longer than the deadline; the watcher's
    // plane trip must cancel the force at a blocking wait.
    let runner = force.serve_runner(RunOptions::default(), |p| {
        for _ in 0..100_000 {
            p.barrier();
        }
    });
    let handle = expect_admitted(
        server.submit(
            JobSpec::for_tenant("sla")
                .with_deadline(Duration::from_millis(20))
                .with_max_retries(3),
            runner,
        ),
    );
    assert_eq!(handle.wait(), JobOutcome::DeadlineExceeded { ran: true });

    let rollup = server.tenant_report("sla").unwrap();
    assert_eq!(rollup.deadline_exceeded, 1);
    assert_eq!(rollup.retries, 0, "a deadline kill must not be retried");
    assert!(
        ForceError::from_outcome(JobOutcome::DeadlineExceeded { ran: true })
            .unwrap_err()
            .is_load_induced()
    );

    // The session's plane resets for the next job: the same force is
    // immediately reusable.
    server.shutdown();
    force
        .try_run(|p| p.barrier())
        .expect("session must recover after a deadline teardown");
}

#[test]
fn language_deadline_tears_down_a_running_interpreter_job() {
    let machine = Machine::new(MachineId::Flex32);
    let pool = Arc::new(ForcePool::new(NPROC, machine.stats()));
    let engine = Arc::new(
        Engine::from_expanded(
            &preprocess(SLOW_LANG_PROGRAM, MachineId::Flex32).unwrap(),
            Arc::clone(&machine),
        )
        .unwrap(),
    );
    engine.set_pool(Arc::clone(&pool));
    let server = ForceServer::new(ServerConfig::default(), machine.stats());

    let completed_runs: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
    let sink = Arc::clone(&completed_runs);
    let runner = engine.serve_runner(NPROC, RunOptions::default(), move |_| {
        *sink.lock().unwrap() += 1;
    });
    let handle = expect_admitted(server.submit(
        JobSpec::for_tenant("sla").with_deadline(Duration::from_millis(15)),
        runner,
    ));
    assert_eq!(handle.wait(), JobOutcome::DeadlineExceeded { ran: true });
    assert_eq!(
        *completed_runs.lock().unwrap(),
        0,
        "a torn-down run must not report output"
    );

    // A queued job whose deadline passes before dispatch never runs.
    let gate = Arc::new(AtomicBool::new(false));
    let release = Arc::clone(&gate);
    let blocker: JobRunner = Box::new(move |_| {
        while !release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(JobYield::default())
    });
    let blocker_handle = expect_admitted(server.submit(JobSpec::for_tenant("sla"), blocker));
    let stale = engine.serve_runner(NPROC, RunOptions::default(), |_| ());
    let stale_handle = expect_admitted(server.submit(
        JobSpec::for_tenant("sla").with_deadline(Duration::from_millis(1)),
        stale,
    ));
    std::thread::sleep(Duration::from_millis(10));
    gate.store(true, Ordering::Release);
    assert!(blocker_handle.wait().is_success());
    assert_eq!(
        stale_handle.wait(),
        JobOutcome::DeadlineExceeded { ran: false }
    );

    server.shutdown();
    // The engine session recovers and the program runs to completion
    // (one process keeps the uninterrupted barrier loop cheap).
    let out = engine
        .run(1)
        .expect("engine must recover after a deadline kill");
    assert_eq!(out.shared_scalar("N"), Some(Value::Int(50_000)));
}

#[test]
fn overload_rejects_and_sheds_instead_of_collapsing() {
    let machine = Machine::new(MachineId::Flex32);
    let server = ForceServer::new(
        ServerConfig {
            tenant_queue_capacity: 8,
            shed_watermark: 10,
            ..ServerConfig::default()
        },
        machine.stats(),
    );

    // Block the dispatcher so the queues fill deterministically.
    let gate = Arc::new(AtomicBool::new(false));
    let release = Arc::clone(&gate);
    let blocker: JobRunner = Box::new(move |_| {
        while !release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(JobYield::default())
    });
    let blocker_handle = expect_admitted(server.submit(
        JobSpec::for_tenant("a").with_priority(Priority::High),
        blocker,
    ));
    while server.backlog() > 0 {
        std::thread::yield_now();
    }

    // Fill tenant "a" to capacity; the ninth submission bounces.
    let mut handles = vec![blocker_handle];
    for _ in 0..8 {
        let runner: JobRunner = Box::new(|_| Ok(JobYield::default()));
        handles.push(expect_admitted(
            server.submit(JobSpec::for_tenant("a"), runner),
        ));
    }
    let overflow: JobRunner = Box::new(|_| Ok(JobYield::default()));
    match server.submit(JobSpec::for_tenant("a"), overflow) {
        Submit::Rejected { reason } => {
            assert!(reason.to_string().contains("queue full"), "{reason}")
        }
        Submit::Admitted(_) => panic!("admission control let a full queue grow"),
    }

    // Tenant "b" pushes the backlog over the shed watermark with
    // low-priority jobs — the six newest must be shed, never the
    // high-priority blocker.
    for _ in 0..8 {
        let runner: JobRunner = Box::new(|_| Ok(JobYield::default()));
        handles.push(expect_admitted(server.submit(
            JobSpec::for_tenant("b").with_priority(Priority::Low),
            runner,
        )));
    }
    assert_eq!(server.backlog(), 16);
    gate.store(true, Ordering::Release);

    let outcomes: Vec<JobOutcome> = handles.iter().map(|h| h.wait()).collect();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, JobOutcome::Shed))
        .count();
    let completed = outcomes.iter().filter(|o| o.is_success()).count();
    assert_eq!(shed, 6, "backlog 16 over watermark 10 sheds exactly 6");
    assert_eq!(completed, 11);
    assert!(
        outcomes[..9].iter().all(JobOutcome::is_success),
        "shedding must only pick low-priority victims: {outcomes:?}"
    );

    let report = server.server_report();
    assert_eq!(report.admitted, 17);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.shed, 6);
    assert!(report.peak_backlog <= 16);
    assert_eq!(machine.stats().snapshot().jobs_shed, 6);
    let b = server.tenant_report("b").unwrap();
    assert_eq!(b.shed, 6);
    assert_eq!(b.completed, 2);
    assert!(matches!(
        ForceError::from_outcome(JobOutcome::Shed),
        Err(ForceError::Rejected { .. })
    ));
}
