//! Property-based tests on the core invariants.
//!
//! Gated behind the non-default `ext` feature because proptest is an
//! external dependency and the default build is hermetic; the same
//! properties run dependency-free in tests/prng_props.rs.  To run these,
//! restore the proptest dev-dependency (see Cargo.toml) and pass
//! `--features ext`.
#![cfg(feature = "ext")]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use the_force::machdep::Mutex;
use the_force::machdep::{Machine, MachineId};
use the_force::prelude::*;

/// Reference enumeration of a Fortran DO range.
fn naive_range(start: i64, last: i64, incr: i64) -> Vec<i64> {
    let mut v = Vec::new();
    let mut k = start;
    while (incr > 0 && k <= last) || (incr < 0 && k >= last) {
        v.push(k);
        k += incr;
        if v.len() > 100_000 {
            break;
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn force_range_matches_naive_enumeration(
        start in -100i64..100,
        last in -100i64..100,
        incr in prop_oneof![-5i64..=-1, 1i64..=5],
    ) {
        let r = ForceRange::new(start, last, incr);
        let naive = naive_range(start, last, incr);
        prop_assert_eq!(r.count() as usize, naive.len());
        prop_assert_eq!(r.iter().collect::<Vec<_>>(), naive);
    }

    #[test]
    fn doall_executes_every_index_exactly_once(
        start in -50i64..50,
        span in 0i64..120,
        incr in prop_oneof![-4i64..=-1, 1i64..=4],
        nproc in 1usize..6,
        chunk in 1u64..8,
        selfsched in any::<bool>(),
    ) {
        let last = if incr > 0 { start + span } else { start - span };
        let range = ForceRange::new(start, last, incr);
        let expected = naive_range(start, last, incr);
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            let record = |i: i64| {
                *hits.lock().entry(i).or_insert(0) += 1;
            };
            if selfsched {
                p.selfsched_do_chunked(range, chunk, record);
            } else {
                p.presched_do(range, record);
            }
        });
        let hits = hits.into_inner();
        prop_assert_eq!(hits.len(), expected.len());
        for i in expected {
            prop_assert_eq!(hits.get(&i), Some(&1));
        }
    }

    #[test]
    fn async_tokens_are_conserved(
        id in prop_oneof![
            Just(MachineId::Hep),
            Just(MachineId::EncoreMultimax),
            Just(MachineId::Cray2),
            Just(MachineId::Flex32),
        ],
        pairs in 1usize..4,
        per in 1u64..60,
    ) {
        let machine = Machine::new(id);
        let chan: Async<u64> = Async::new(&machine);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..pairs as u64 {
                let chan = &chan;
                s.spawn(move || {
                    for i in 0..per {
                        chan.produce(p * per + i + 1);
                    }
                });
            }
            for _ in 0..pairs {
                let chan = &chan;
                let sum = &sum;
                s.spawn(move || {
                    for _ in 0..per {
                        sum.fetch_add(chan.consume(), Ordering::Relaxed);
                    }
                });
            }
        });
        let total = pairs as u64 * per;
        prop_assert_eq!(sum.load(Ordering::Relaxed), total * (total + 1) / 2);
        prop_assert!(!chan.is_full());
    }

    #[test]
    fn pcase_sections_run_exactly_once(
        nproc in 1usize..6,
        nsect in 0usize..10,
        selfsched in any::<bool>(),
    ) {
        let force = Force::new(nproc);
        let counts: Vec<AtomicU64> = (0..nsect).map(|_| AtomicU64::new(0)).collect();
        force.run(|p| {
            let mut pc = p.pcase();
            for c in &counts {
                pc = pc.sect(|| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            if selfsched {
                pc.selfsched();
            } else {
                pc.presched();
            }
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn askfor_processes_every_posted_item(
        nproc in 1usize..5,
        seed in 1u64..40,
    ) {
        let force = Force::new(nproc);
        let leaves = AtomicU64::new(0);
        force.run(|p| {
            p.askfor(|| vec![seed], |n, pot| {
                if n > 1 {
                    pot.post(n / 2);
                    pot.post(n - n / 2);
                } else {
                    leaves.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        prop_assert_eq!(leaves.load(Ordering::Relaxed), seed);
    }

    #[test]
    fn every_policy_executes_every_index_exactly_once(
        start in -50i64..50,
        span in 0i64..100,
        incr in prop_oneof![-4i64..=-1, 1i64..=4],
        nproc in 1usize..6,
        which in 0usize..6,
    ) {
        let last = if incr > 0 { start + span } else { start - span };
        let range = ForceRange::new(start, last, incr);
        let expected = naive_range(start, last, incr);
        let policy = SchedulePolicy::all()[which];
        let force = Force::new(nproc);
        let hits: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
        force.run(|p| {
            p.doall_with(policy, range, |i| {
                *hits.lock().entry(i).or_insert(0) += 1;
            });
        });
        let hits = hits.into_inner();
        prop_assert_eq!(hits.len(), expected.len(), "{:?}", policy);
        for k in &expected {
            prop_assert_eq!(hits.get(k), Some(&1), "index {} under {:?}", k, policy);
        }
    }

    #[test]
    fn askfor_split_trees_balance_under_stealing(
        machine_ix in 0usize..6,
        nproc in 1usize..6,
        seeds in proptest::collection::vec(1u64..50, 1..4),
    ) {
        let machine = Machine::new(MachineId::all()[machine_ix]);
        let force = Force::with_machine(nproc, machine);
        let total: u64 = seeds.iter().sum();
        let posts = AtomicU64::new(0);
        let handled = AtomicU64::new(0);
        let leaves = AtomicU64::new(0);
        let seeds2 = seeds.clone();
        force.run(|p| {
            p.askfor(move || seeds2.clone(), |n, pot| {
                handled.fetch_add(1, Ordering::Relaxed);
                if n > 1 {
                    posts.fetch_add(2, Ordering::Relaxed);
                    pot.post(n / 2);
                    pot.post(n - n / 2);
                } else {
                    leaves.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        // Every posted item is handled exactly once, and the split tree
        // conserves the sum regardless of which pid stole which node.
        prop_assert_eq!(
            handled.load(Ordering::Relaxed),
            seeds.len() as u64 + posts.load(Ordering::Relaxed)
        );
        prop_assert_eq!(leaves.load(Ordering::Relaxed), total);
    }

    #[test]
    fn resolve_partitions_are_a_bijection(
        sizes in proptest::collection::vec(1usize..4, 1..4),
    ) {
        let nproc: usize = sizes.iter().sum();
        let force = Force::new(nproc);
        let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        let sizes2 = sizes.clone();
        force.run(|p| {
            p.resolve(&sizes2, |c| {
                seen.lock().push((c.index(), c.rank()));
            });
        });
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        let mut expected = Vec::new();
        for (ci, &s) in sizes.iter().enumerate() {
            for r in 0..s {
                expected.push((ci, r));
            }
        }
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn m4_quoted_text_is_preserved(text in "[a-zA-Z0-9 _+=.,;:-]{0,60}") {
        let mut m4 = the_force::prep::m4::M4::new();
        let src = format!("`{text}'");
        prop_assert_eq!(m4.expand(&src).unwrap(), text);
    }

    #[test]
    fn m4_define_roundtrip(
        name in "[A-Z][A-Z0-9_]{0,10}",
        body in "[xyz0-9 +*-]{0,30}",
    ) {
        // Uppercase names cannot collide with the lowercase builtins,
        // and the body alphabet avoids forming builtin words.
        let mut m4 = the_force::prep::m4::M4::new();
        m4.define(&name, &body);
        prop_assert_eq!(m4.expand(&name).unwrap(), body);
    }

    #[test]
    fn fortran_lexer_never_panics(line in "\\PC{0,60}") {
        // Errors are fine; panics are not.
        let _ = the_force::fortran::lexer::lex_statement(&line, 1);
    }

    #[test]
    fn fortran_parser_never_panics(line in "[A-Za-z0-9 ()=+,.*/']{0,60}") {
        if let Ok(toks) = the_force::fortran::lexer::lex_statement(&line, 1) {
            let _ = the_force::fortran::parser::parse_statement(&toks, 1);
        }
    }

    #[test]
    fn sed_pass_never_panics(line in "\\PC{0,60}") {
        let _ = the_force::prep::sedpass::sed_pass(&line);
    }

    #[test]
    fn shared_f64_adds_are_exact_for_integers(
        nproc in 1usize..5,
        n in 1i64..300,
    ) {
        let arr = SharedF64Array::zeroed(1);
        let force = Force::new(nproc);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, n), |_| {
                arr.add(0, 1.0);
            });
        });
        prop_assert_eq!(arr.get(0), n as f64);
    }
}

proptest! {
    // Heavier cases get fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn barrier_algorithms_agree_with_each_other(
        n in 1usize..7,
        rounds in 1usize..15,
    ) {
        use the_force::core::barrier_algs::{all_algorithms, BarrierAlg};
        use force_machdep::spawn_force;
        let machine = Machine::new(MachineId::EncoreMultimax);
        for alg in all_algorithms(&machine, n) {
            let counter = AtomicU64::new(0);
            let alg: &dyn BarrierAlg = alg.as_ref();
            spawn_force(n, machine.stats(), |pid| {
                for r in 0..rounds {
                    counter.fetch_add(1, Ordering::SeqCst);
                    alg.wait(pid);
                    let seen = counter.load(Ordering::SeqCst);
                    assert!(seen >= ((r + 1) * n) as u64, "{}", alg.name());
                    alg.wait(pid);
                }
            });
            prop_assert_eq!(counter.load(Ordering::SeqCst), (rounds * n) as u64);
        }
    }

    #[test]
    fn interpreter_sum_matches_for_random_bounds(
        start in 1i64..20,
        last in 1i64..60,
        nproc in 1usize..4,
    ) {
        let expected: i64 = naive_range(start, last, 1).iter().sum();
        let src = format!(
            "      Force FMAIN of NP ident ME\n\
             \x20     Shared INTEGER TOTAL\n\
             \x20     Private INTEGER K\n\
             \x20     End declarations\n\
             \x20     Selfsched DO 100 K = {start}, {last}\n\
             \x20     Critical LCK\n\
             \x20     TOTAL = TOTAL + K\n\
             \x20     End critical\n\
             100   End selfsched DO\n\
             \x20     Join\n"
        );
        let out = the_force::run_force_source(&src, MachineId::Flex32, nproc).unwrap();
        prop_assert_eq!(
            out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap(),
            expected
        );
    }
}
