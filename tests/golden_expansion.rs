//! EXP-1 — the paper's worked example (§4.2).
//!
//! The only listing in the paper shows the macro expansion of
//!
//! ```fortran
//! Selfsched DO 100 K = START, LAST, INCR
//! (* LOOPBODY *)
//! 100 End Selfsched DO
//! ```
//!
//! This test preprocesses that exact construct and compares the
//! machine-independent intermediate form against the listing, line by
//! line.  The only deviations from the paper's text are (a) defensive
//! parentheses around the macro arguments (`(INCR)` where the paper has
//! `INCR`) — the paper's version mis-expands for compound bound
//! expressions — and (b) the force-size variable is the program's `of`
//! variable (`NP`) where the paper writes the placeholder
//! `number_of_processes`.

use the_force::machdep::MachineId;
use the_force::prep::preprocess;

const SOURCE: &str = "\
      Force FMAIN of NP ident ME
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = START, LAST, INCR
C LOOPBODY
100   End Selfsched DO
      Join
";

/// Normalize a line: squeeze whitespace.
fn norm(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The §4.2 listing, adjusted as documented in the module comment.
const EXPECTED: &[&str] = &[
    // C loop entry code
    "lock(BARWIN)",
    "IF (ZZNBAR .EQ. 0) THEN",
    // C initialize loop index
    "K_shared = START",
    "END IF",
    // C report arrival of processes
    "ZZNBAR = ZZNBAR + 1",
    "IF (ZZNBAR .EQ. NP) THEN",
    "unlock(BARWOT)",
    "ELSE",
    "unlock(BARWIN)",
    "END IF",
    // C self scheduled loop index distribution
    "100 lock(LOOP100)",
    // C get next index value
    "K = K_shared",
    "K_shared = K + INCR",
    "unlock(LOOP100)",
    // C test for completion
    "IF (((INCR) .GT. 0 .AND. K .LE. (LAST)) .OR. ((INCR) .LT. 0 .AND. K .GE. (LAST))) THEN",
    // (* LOOPBODY *)
    "GO TO 100",
    "END IF",
    // C loop exit code
    "lock(BARWOT)",
    // C report exit of processes
    "ZZNBAR = ZZNBAR - 1",
    "IF (ZZNBAR .EQ. 0) THEN",
    "unlock(BARWIN)",
    "ELSE",
    "unlock(BARWOT)",
    "END IF",
];

#[test]
fn selfsched_do_expansion_matches_the_paper_listing() {
    let p = preprocess(SOURCE, MachineId::EncoreMultimax).expect("preprocess");
    // Extract the loop expansion: everything between the entry-code
    // comment and the end of the exit protocol.
    let inter = &p.intermediate;
    let start = inter.find("C loop entry code").expect("entry comment");
    let lines: Vec<String> = inter[start..]
        .lines()
        .filter(|l| !l.trim_start().starts_with('C') && !l.trim().is_empty())
        .map(norm)
        .collect();
    // The RETURN of Join follows the loop; compare the prefix.
    assert!(
        lines.len() >= EXPECTED.len(),
        "expansion too short:\n{}",
        inter
    );
    for (i, (got, want)) in lines.iter().zip(EXPECTED.iter()).enumerate() {
        assert_eq!(
            got, want,
            "line {i} of the expansion differs\nfull intermediate:\n{inter}"
        );
    }
}

#[test]
fn the_loop_body_sits_inside_the_completion_test() {
    let p = preprocess(SOURCE, MachineId::EncoreMultimax).expect("preprocess");
    let inter = &p.intermediate;
    let body = inter.find("C LOOPBODY").expect("body survives expansion");
    let test = inter.find(".GT. 0 .AND. K .LE.").expect("completion test");
    let goto = inter.find("GO TO 100").expect("loop-back");
    assert!(
        test < body && body < goto,
        "body must be between the test and the GO TO"
    );
}

#[test]
fn verbatim_paper_landmarks_appear_in_order() {
    // The exact strings of the paper listing that our expansion shares
    // unmodified, in the paper's order.
    let p = preprocess(SOURCE, MachineId::EncoreMultimax).expect("preprocess");
    let inter = &p.intermediate;
    let landmarks = [
        "C loop entry code",
        "lock(BARWIN)",
        "C initialize loop index",
        "C report arrival of processes",
        "ZZNBAR = ZZNBAR + 1",
        "unlock(BARWOT)",
        "unlock(BARWIN)",
        "C self scheduled loop index distribution",
        "lock(LOOP100)",
        "C get next index value",
        "K = K_shared",
        "unlock(LOOP100)",
        "C test for completion",
        "GO TO 100",
        "C loop exit code",
        "lock(BARWOT)",
        "C report exit of processes",
        "ZZNBAR = ZZNBAR - 1",
    ];
    let mut pos = 0;
    for lm in landmarks {
        match inter[pos..].find(lm) {
            Some(at) => pos += at + lm.len(),
            None => panic!("landmark `{lm}` missing or out of order in:\n{inter}"),
        }
    }
}

#[test]
fn the_expansion_executes_correctly() {
    // The listing is not just text: run it.  Replace the symbolic bounds
    // with literals and count each index exactly once.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER HITS(25)
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 25
      Critical LCK
      HITS(K) = HITS(K) + 1
      End critical
100   End Selfsched DO
      Join
";
    for nproc in [1, 2, 4] {
        let out = the_force::run_force_source(src, MachineId::EncoreMultimax, nproc).unwrap();
        let hits = &out.shared_values["HITS"];
        assert!(
            hits.iter().all(|v| *v == the_force::fortran::Value::Int(1)),
            "nproc={nproc}: {hits:?}"
        );
        // The barrier protocol left the environment clean for reuse.
        assert_eq!(
            out.shared_scalar("ZZNBAR"),
            Some(the_force::fortran::Value::Int(0))
        );
    }
}

#[test]
fn the_chunked_expansion_executes_correctly() {
    // The CHUNK extension: each visit to the shared index claims four
    // consecutive trips.  25 is not a multiple of 4, so the final chunk
    // crosses the bound and must stop at the per-trip completion test.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER HITS(25)
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 25 CHUNK 4
      Critical LCK
      HITS(K) = HITS(K) + 1
      End critical
100   End Selfsched DO
      Join
";
    for nproc in [1, 2, 4] {
        let out = the_force::run_force_source(src, MachineId::EncoreMultimax, nproc).unwrap();
        let hits = &out.shared_values["HITS"];
        assert!(
            hits.iter().all(|v| *v == the_force::fortran::Value::Int(1)),
            "nproc={nproc}: {hits:?}"
        );
        assert_eq!(
            out.shared_scalar("ZZNBAR"),
            Some(the_force::fortran::Value::Int(0))
        );
    }
}

#[test]
fn the_chunked_expansion_claims_under_one_lock_round_trip() {
    // The point of CHUNK: the expansion advances the shared index by
    // CHUNK*INCR per lock acquisition and walks the chunk privately.
    let src = "\
      Force FMAIN of NP ident ME
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, N CHUNK 4
C LOOPBODY
100   End Selfsched DO
      Join
";
    let p = preprocess(src, MachineId::EncoreMultimax).expect("preprocess");
    let inter = &p.intermediate;
    assert!(
        inter.contains("K_shared = ZZV100 + (4)*(1)"),
        "chunked claim missing:\n{inter}"
    );
    assert!(
        inter.contains("IF (ZZC100 .LT. (4)) GO TO"),
        "chunk walk missing:\n{inter}"
    );
}

#[test]
fn the_guided_expansion_executes_correctly() {
    // GUIDED: chunk size tapers as MAX(1, remaining/(2*NP)); coverage
    // must still be exactly-once, including with a negative increment.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER HITS(40)
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 40 GUIDED
      Critical LCK
      HITS(K) = HITS(K) + 1
      End critical
100   End Selfsched DO
      Join
";
    for nproc in [1, 3, 4] {
        let out = the_force::run_force_source(src, MachineId::Flex32, nproc).unwrap();
        let hits = &out.shared_values["HITS"];
        assert!(
            hits.iter().all(|v| *v == the_force::fortran::Value::Int(1)),
            "nproc={nproc}: {hits:?}"
        );
        assert_eq!(
            out.shared_scalar("ZZNBAR"),
            Some(the_force::fortran::Value::Int(0))
        );
    }

    let down = "\
      Force FMAIN of NP ident ME
      Shared INTEGER COUNT
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 19, 1, -2 GUIDED
      Critical LCK
      COUNT = COUNT + 1
      End critical
100   End Selfsched DO
      Join
";
    let out = the_force::run_force_source(down, MachineId::SequentBalance, 2).unwrap();
    assert_eq!(
        out.shared_scalar("COUNT"),
        Some(the_force::fortran::Value::Int(10))
    );
}

#[test]
fn negative_increment_matches_the_papers_completion_test() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER HITS(20), COUNT
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 19, 1, -2
      Critical LCK
      HITS(K) = HITS(K) + 1
      COUNT = COUNT + 1
      End critical
100   End Selfsched DO
      Join
";
    let out = the_force::run_force_source(src, MachineId::Flex32, 3).unwrap();
    assert_eq!(
        out.shared_scalar("COUNT"),
        Some(the_force::fortran::Value::Int(10))
    );
    let hits = &out.shared_values["HITS"];
    for (i, h) in hits.iter().enumerate() {
        let idx = i + 1;
        let expected = if idx % 2 == 1 { 1 } else { 0 };
        assert_eq!(*h, the_force::fortran::Value::Int(expected), "index {idx}");
    }
}
