//! Failure injection and error surfacing: wrong-machine execution,
//! malformed programs, runtime faults, protocol misuse.  Errors must be
//! structured diagnostics — never hangs, never unsoundness.

use the_force::fortran::{Engine, FortErrorKind};
use the_force::machdep::{Machine, MachineId};
use the_force::prelude::*;
use the_force::prep::preprocess;
use the_force::{run_force_source, ForceError};

const OK_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Critical L
      N = N + 1
      End critical
      Join
";

#[test]
fn expanded_code_is_not_portable_across_machines() {
    // Preprocess once per machine; run each expansion on every machine.
    // The diagonal must pass; off-diagonal runs whose lock mnemonics
    // differ must fail with a machine mismatch.
    for from in MachineId::all() {
        let exp = preprocess(OK_PROGRAM, from).unwrap();
        for to in MachineId::all() {
            let engine = Engine::from_expanded(&exp, Machine::new(to)).unwrap();
            let result = engine.run(2);
            let compatible = {
                let a = the_force::machdep::MachineSpec::of(from);
                let b = the_force::machdep::MachineSpec::of(to);
                a.vendor_locks == b.vendor_locks
                    && a.process_model == b.process_model
                    && a.sharing == b.sharing
            };
            match result {
                Ok(out) => {
                    assert!(
                        compatible,
                        "{} code ran on {} but should have mismatched",
                        from.name(),
                        to.name()
                    );
                    assert_eq!(
                        out.shared_scalar("N"),
                        Some(the_force::fortran::Value::Int(2))
                    );
                }
                Err(e) => {
                    assert!(!compatible, "{} on {} failed: {e}", from.name(), to.name());
                    assert!(
                        matches!(
                            e.kind,
                            FortErrorKind::MachineMismatch { .. } | FortErrorKind::Runtime(_)
                        ),
                        "wrong error kind: {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn sed_errors_carry_line_numbers() {
    let src = "      Force M of NP ident ME\n      Produce X\n";
    match run_force_source(src, MachineId::Hep, 1) {
        Err(ForceError::Prep(e)) => assert!(e.to_string().contains("line 2"), "{e}"),
        other => panic!("expected a prep error, got {other:?}"),
    }
}

#[test]
fn out_of_bounds_subscript_is_reported_not_ub() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(4)
      Private INTEGER K
      End declarations
      K = 5
      A(K) = 1
      Join
";
    let err = run_force_source(src, MachineId::Flex32, 1).unwrap_err();
    assert!(err.to_string().contains("outside 1..4"), "{err}");
}

#[test]
fn division_by_zero_is_reported() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER X
      End declarations
      X = 1 / (X - X)
      Join
";
    let err = run_force_source(src, MachineId::Hep, 1).unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn a_panicking_process_fails_the_whole_force() {
    let force = Force::new(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        force.run(|p| {
            if p.pid() == 2 {
                panic!("process 2 crashed");
            }
            // The others do some private work and finish; the force is
            // joined before the panic resurfaces.
            let mut x = 0u64;
            for i in 0..100 {
                x += i;
            }
            std::hint::black_box(x);
        });
    }));
    assert!(result.is_err());
    // The machine is reusable after a crashed force.
    let force2 = Force::new(2);
    let sum = std::sync::atomic::AtomicU64::new(0);
    force2.run(|p| {
        sum.fetch_add(p.pid() as u64 + 1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 3);
}

#[test]
fn goto_to_a_missing_label_is_a_compile_error() {
    let src = "\
      Force FMAIN of NP ident ME
      End declarations
      GO TO 999
      Join
";
    let err = run_force_source(src, MachineId::Hep, 1).unwrap_err();
    assert!(err.to_string().contains("unknown label 999"), "{err}");
}

#[test]
fn zero_trip_loops_are_not_an_error() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 5, 1
      Critical L
      N = N + 1
      End critical
100   End selfsched DO
      Presched DO 10 K = 5, 1
      N = N - 1
10    End presched DO
      Join
";
    let out = run_force_source(src, MachineId::SequentBalance, 3).unwrap();
    assert_eq!(
        out.shared_scalar("N"),
        Some(the_force::fortran::Value::Int(0))
    );
}

#[test]
fn wrong_argument_counts_are_reported() {
    let src = "\
      Force FMAIN of NP ident ME
      Externf W
      End declarations
      CALL W(1, 2)
      Join
      Forcesub W(A) of NP ident ME
      INTEGER A
      End declarations
      Join
";
    let err = run_force_source(src, MachineId::Hep, 1).unwrap_err();
    assert!(err.to_string().contains("expects 1 argument"), "{err}");
}

#[test]
fn unknown_subroutine_is_reported() {
    let src = "\
      Force FMAIN of NP ident ME
      End declarations
      CALL NOSUCH(1)
      Join
";
    let err = run_force_source(src, MachineId::Hep, 1).unwrap_err();
    assert!(err.to_string().contains("NOSUCH"), "{err}");
}

#[test]
fn value_arguments_are_read_only() {
    let src = "\
      Force FMAIN of NP ident ME
      Private INTEGER K
      Externf W
      End declarations
      K = 1
      CALL W(K)
      Join
      Forcesub W(A) of NP ident ME
      INTEGER A
      End declarations
      A = 2
      Join
";
    let err = run_force_source(src, MachineId::Flex32, 1).unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");
}

#[test]
fn interpreter_errors_inside_the_force_propagate() {
    // The fault happens inside a spawned force process, not the driver.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(4)
      End declarations
      A(ME + 10) = 1
      Join
";
    let err = run_force_source(src, MachineId::EncoreMultimax, 2).unwrap_err();
    assert!(err.to_string().contains("outside 1..4"), "{err}");
}

#[test]
fn scarce_lock_pool_still_correct_when_exhausted() {
    // More critical-section locks + async locks than the Cray pool holds:
    // aliasing causes false contention but never wrong answers.
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..40 {
        decls.push_str(&format!("      Shared INTEGER V{i}\n"));
        body.push_str(&format!(
            "      Critical L{i}\n      V{i} = V{i} + 1\n      End critical\n"
        ));
    }
    let src = format!(
        "      Force FMAIN of NP ident ME\n{decls}      End declarations\n{body}      Join\n"
    );
    let out = run_force_source(&src, MachineId::Cray2, 3).unwrap();
    for i in 0..40 {
        assert_eq!(
            out.shared_scalar(&format!("V{i}")),
            Some(the_force::fortran::Value::Int(3)),
            "V{i}"
        );
    }
    assert!(
        out.stats.locks_aliased > 0,
        "the pool should have been exhausted: {:?}",
        out.stats
    );
}

// --- Fault containment: the force-wide fault plane ---------------------

#[test]
fn a_panic_at_a_barrier_is_contained_on_every_machine() {
    // One process panics while its peers park at a barrier: on every
    // machine personality the peers must be cancelled (no hang) and the
    // caller must see a structured fault naming the right process.
    use std::time::{Duration, Instant};
    for id in MachineId::all() {
        for nproc in [2usize, 8] {
            let force =
                Force::with_machine(nproc, Machine::new(id)).with_watchdog(Duration::from_secs(5));
            let last = nproc - 1;
            let start = Instant::now();
            let err = force
                .try_run(|p| {
                    if p.pid() == last {
                        panic!("boom");
                    }
                    p.barrier();
                })
                .expect_err("the panic must surface as a fault");
            assert_eq!(err.pid, last, "{} nproc={nproc}", id.name());
            assert_eq!(err.construct, "body", "{} nproc={nproc}", id.name());
            assert_eq!(err.payload, "boom", "{} nproc={nproc}", id.name());
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{} nproc={nproc}: containment took the watchdog bound",
                id.name()
            );
        }
    }
}

#[test]
fn a_panic_holding_a_critical_lock_is_attributed_and_released() {
    // The faulting process dies *inside* a named critical section.  The
    // lock must be released on unwind (peers that already entered their
    // own critical finish it) and the fault must name the construct.
    for id in MachineId::all() {
        let force = Force::with_machine(4, Machine::new(id));
        let err = force
            .try_run(|p| {
                if p.pid() == 2 {
                    p.critical("WEDGE", || panic!("lock holder died"));
                }
                p.barrier();
            })
            .expect_err("the panic must surface as a fault");
        assert_eq!(err.pid, 2, "{}", id.name());
        assert_eq!(err.construct, "critical", "{}", id.name());
        assert_eq!(err.payload, "lock holder died", "{}", id.name());
    }
}

#[test]
fn consume_with_no_producer_trips_the_watchdog_on_every_machine() {
    use std::time::{Duration, Instant};
    for id in MachineId::all() {
        let force =
            Force::with_machine(2, Machine::new(id)).with_watchdog(Duration::from_millis(200));
        let chan: Async<i64> = Async::new(force.machine());
        let start = Instant::now();
        let err = force
            .try_run(|_p| {
                let _ = chan.consume();
            })
            .expect_err("the watchdog must trip");
        assert_eq!(err.construct, "consume", "{}", id.name());
        assert!(
            err.payload.contains("deadlock watchdog"),
            "{}: {}",
            id.name(),
            err.payload
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "{}: watchdog took too long",
            id.name()
        );
        assert!(
            force.machine().stats().snapshot().watchdog_trips >= 1,
            "{}: trip not counted",
            id.name()
        );
    }
}

#[test]
fn an_interpreter_error_cancels_peers_blocked_at_a_barrier() {
    // Process 1 of four faults (out-of-bounds subscript) before the
    // barrier its peers are already parked in; the fault plane must
    // cancel them and surface the interpreter's own diagnostic.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(4)
      End declarations
      IF (ME .EQ. 1) THEN
      A(ME + 9) = 1
      END IF
      Barrier
      A(1) = 1
      End barrier
      Join
";
    for id in MachineId::all() {
        let err = run_force_source(src, id, 4).unwrap_err();
        assert!(
            err.to_string().contains("outside 1..4"),
            "{}: {err}",
            id.name()
        );
    }
}

#[test]
fn engine_watchdog_reports_a_wedged_interpreter_force() {
    use std::time::Duration;
    // Every process consumes from an async variable nobody produces.
    let src = "\
      Force FMAIN of NP ident ME
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      Consume CHAN into T
      Join
";
    for id in MachineId::all() {
        let (_exp, engine) = the_force::compile_force_source(src, id).unwrap();
        engine.set_watchdog(Duration::from_millis(200));
        let err = engine.run(2).unwrap_err();
        assert!(
            err.to_string().contains("deadlock watchdog"),
            "{}: {err}",
            id.name()
        );
    }
}

#[test]
fn fault_injection_with_a_fixed_seed_is_contained_on_every_machine() {
    // A certain panic rate at construct boundaries: the force must fault
    // with the injection's tag, never hang, and count what it injected.
    let inj = FaultInjection {
        seed: 0xDEAD_BEEF,
        panic_per_mille: 500,
        delay_per_mille: 0,
        spurious_per_mille: 0,
    };
    for id in MachineId::all() {
        let force = Force::with_machine(4, Machine::new(id)).with_fault_injection(inj);
        let err = force
            .try_run(|p| {
                for _ in 0..8 {
                    p.barrier();
                }
            })
            .expect_err("a 50% injection rate over 8 barriers must fire");
        assert!(
            err.payload.contains("injected fault"),
            "{}: {}",
            id.name(),
            err.payload
        );
        assert!(
            force.machine().stats().snapshot().faults_detected >= 1,
            "{}",
            id.name()
        );
    }
}

#[test]
fn a_fault_under_every_schedule_policy_is_attributed_to_the_doall() {
    // One process dies mid-loop under each policy of the scheduling
    // plane; the fault must name the DOALL construct and the right pid,
    // and the force must not hang — peers may be spinning on a shared
    // trip counter, parked in the end barrier, or probing deques.
    for policy in SchedulePolicy::all() {
        let force = Force::new(4);
        let err = force
            .try_run(|p| {
                p.doall_with(policy, ForceRange::to(1, 64), |i| {
                    if i == 23 {
                        panic!("trip 23 died");
                    }
                });
            })
            .expect_err("the panic must surface as a fault");
        assert_eq!(err.construct, "doall", "{policy:?}");
        assert_eq!(err.payload, "trip 23 died", "{policy:?}");
    }
}

#[test]
fn a_fault_while_peers_are_stealing_is_contained() {
    // Work stealing adds a new blocking edge (thieves probing victim
    // deques).  A process that dies while holding most of the work must
    // still cancel the whole force promptly on every machine.
    use std::time::{Duration, Instant};
    for id in MachineId::all() {
        let force = Force::with_machine(4, Machine::new(id)).with_watchdog(Duration::from_secs(5));
        let start = Instant::now();
        let err = force
            .try_run(|p| {
                p.doall_with(SchedulePolicy::Steal, ForceRange::to(1, 64), |i| {
                    if i == 1 {
                        // pid 0's first seeded trip: die before anything
                        // is drained, while peers turn to stealing.
                        panic!("victim died");
                    }
                    std::thread::sleep(Duration::from_micros(50));
                });
            })
            .expect_err("the panic must surface as a fault");
        assert_eq!(err.construct, "doall", "{}", id.name());
        assert_eq!(err.payload, "victim died", "{}", id.name());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{}: containment took the watchdog bound",
            id.name()
        );
    }
}

#[test]
fn an_askfor_handler_fault_under_stealing_is_attributed() {
    // The deque-backed Askfor: a handler dies while peers are asking
    // (stealing or parked in the dry-wait); everyone must be released
    // and the fault attributed to the askfor construct.
    let force = Force::new(4);
    let err = force
        .try_run(|p| {
            p.askfor(
                || (1..=40u64).collect(),
                |w, pot| {
                    if w == 7 {
                        panic!("handler died");
                    }
                    if w > 20 {
                        pot.post(w - 20);
                    }
                },
            );
        })
        .expect_err("the handler panic must surface");
    assert_eq!(err.construct, "askfor");
    assert_eq!(err.payload, "handler died");
}

#[test]
fn spurious_and_delay_injection_preserve_program_results() {
    // Non-fatal perturbations (spurious lock failures, delays) must not
    // change what the program computes, on any machine.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let inj = FaultInjection {
        seed: 42,
        panic_per_mille: 0,
        delay_per_mille: 200,
        spurious_per_mille: 200,
    };
    for id in MachineId::all() {
        let force = Force::with_machine(3, Machine::new(id)).with_fault_injection(inj);
        let shared = AtomicUsize::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 30), |i| {
                shared.fetch_add(i as usize, Ordering::Relaxed);
            });
            p.barrier();
        });
        assert_eq!(shared.load(Ordering::Relaxed), 465, "{}", id.name());
    }
}

// --- Sessions and pooling: state reset between jobs --------------------

#[test]
fn a_force_session_fully_resets_construct_state_between_runs() {
    // Repeated `execute` on ONE Force, alternating construct sequences:
    // run k's collective #0 is a selfsched loop, run k+1's is an askfor.
    // Any leaked occurrence slot, barrier arrival count, or shared-index
    // cell would show up as a wrong sum, a divergence panic, or a hang.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let force = Force::new(4);
    for round in 0..3 {
        let sum = AtomicUsize::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 50), |i| {
                sum.fetch_add(i as usize, Ordering::Relaxed);
            });
            p.barrier();
            p.selfsched_do(ForceRange::to(1, 20), |i| {
                sum.fetch_add(i as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1275 + 210, "round {round}");

        let sections = AtomicUsize::new(0);
        force.run(|p| {
            p.barrier_section(|| {
                sections.fetch_add(1, Ordering::Relaxed);
            });
            p.critical("R", || {
                sections.fetch_add(10, Ordering::Relaxed);
            });
        });
        assert_eq!(sections.load(Ordering::Relaxed), 41, "round {round}");
    }
}

#[test]
fn a_pooled_run_after_an_injected_fault_starts_from_a_clean_plane() {
    // Job 1 faults by injection; the session must re-arm the plane so
    // job 2 — on the SAME pool and session, with injection off — runs
    // clean instead of being cancelled by the stale trip.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let machine = Machine::new(MachineId::EncoreMultimax);
    let pool = std::sync::Arc::new(ForcePool::new(4, machine.stats()));
    let force = Force::with_machine(4, machine).with_pool(pool);
    let inj = FaultInjection {
        seed: 0xF001,
        panic_per_mille: 1000,
        delay_per_mille: 0,
        spurious_per_mille: 0,
    };
    let err = force
        .try_execute_with(
            RunOptions {
                injection: Some(inj),
                ..RunOptions::default()
            },
            |p| p.barrier(),
        )
        .expect_err("a certain injection must fault the pooled job");
    assert!(err.payload.contains("injected fault"), "{}", err.payload);

    let sum = AtomicUsize::new(0);
    let r = force.try_run(|p| {
        p.barrier();
        sum.fetch_add(p.pid() + 1, Ordering::Relaxed);
    });
    assert!(r.is_ok(), "plane must be reset between pooled jobs: {r:?}");
    assert_eq!(sum.load(Ordering::Relaxed), 10);
    assert_eq!(
        force
            .last_job_stats()
            .expect("clean run has per-job stats")
            .barrier_episodes,
        1
    );
}

#[test]
fn async_variable_misuse_void_then_consume_blocks_until_produce() {
    // Void leaves the variable empty; a consume must then wait for a
    // produce instead of reading garbage.
    let machine = Machine::new(MachineId::Flex32);
    let v = std::sync::Arc::new(Async::new_full(&machine, 5i64));
    v.void();
    let v2 = std::sync::Arc::clone(&v);
    let t = std::thread::spawn(move || v2.consume());
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(!t.is_finished(), "consume after void must block");
    v.produce(9);
    assert_eq!(t.join().unwrap(), 9);
}
