//! Guard test for the hermetic-build guarantee.
//!
//! The default feature set must build and test from a clean checkout with
//! no crates registry (`cargo build --release --offline && cargo test
//! --offline`).  That holds exactly when no workspace manifest names a
//! registry dependency — path dependencies on sibling crates are the only
//! kind allowed.  This test scans every Cargo.toml in the workspace and
//! fails loudly, naming the offending line, if an external dependency
//! sneaks back in.  (To use one intentionally, gate it behind the
//! non-default `ext` feature as a commented restore line — see the
//! workspace Cargo.toml.)

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml files in the workspace (root + crates/*).
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates/ dir") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    assert!(
        found.len() >= 5,
        "expected the root and at least four crate manifests, found {}",
        found.len()
    );
    found
}

/// Whether a `[dependencies]`-style section may introduce registry deps.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']').trim();
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.contains("dependencies")
}

/// Whether a dependency declaration resolves inside the workspace.
fn is_workspace_local(decl: &str) -> bool {
    // `foo.workspace = true`, `foo = { workspace = true, .. }`, or an
    // explicit path dependency.  Anything else (`foo = "1"`, a git or
    // registry table) needs the network.
    decl.contains("workspace = true")
        || decl.contains(".workspace")
        || decl.contains("path =")
        || decl.contains("path=")
}

#[test]
fn default_feature_set_is_dependency_free() {
    let mut offenders = Vec::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dependency_section(line);
                continue;
            }
            if in_dep_section && line.contains('=') && !is_workspace_local(line) {
                offenders.push(format!("{}:{}: {}", manifest.display(), lineno + 1, line));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "registry dependencies break the hermetic build (gate them behind \
         the `ext` feature instead):\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn no_external_sync_crates_in_source() {
    // The migration off crossbeam/parking_lot/rand is structural: all
    // sync primitives live in force-machdep's portable module.  Catch a
    // reintroduction at the `use` site even if the manifest check above
    // were somehow bypassed (e.g. a vendored copy).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = fs::read_to_string(&path).expect("read source");
                for (lineno, line) in text.lines().enumerate() {
                    let t = line.trim();
                    if t.starts_with("//") {
                        continue;
                    }
                    for banned in ["crossbeam", "parking_lot", "rand::"] {
                        if t.contains(banned) {
                            offenders.push(format!("{}:{}: {}", path.display(), lineno + 1, t));
                        }
                    }
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "external sync/PRNG crates referenced outside the hermetic gate:\n  {}",
        offenders.join("\n  ")
    );
}
