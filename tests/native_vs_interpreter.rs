//! Equivalence of the two Force implementations in this repository:
//! the native Rust embedding (`force-core`) and the language pipeline
//! (`force-prep` + `force-fortran`) must compute the same results on the
//! same machine personalities — they are two renderings of one language.

use std::sync::atomic::{AtomicI64, Ordering};

use the_force::fortran::Value;
use the_force::machdep::{Machine, MachineId};
use the_force::prelude::*;
use the_force::run_force_source;

#[test]
fn selfscheduled_sum() {
    let n = 200i64;
    let expected: i64 = (1..=n).sum();
    for id in [MachineId::Hep, MachineId::Cray2, MachineId::SequentBalance] {
        // native
        let force = Force::with_machine(3, Machine::new(id));
        let sum = AtomicI64::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, n), |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        let native = sum.load(Ordering::Relaxed);

        // language
        let src = format!(
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, {n}
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Join
"
        );
        let out = run_force_source(&src, id, 3).unwrap();
        let interpreted = out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap();

        assert_eq!(native, expected, "{}", id.name());
        assert_eq!(interpreted, expected, "{}", id.name());
    }
}

#[test]
fn prescheduled_distribution_is_identical() {
    // Cyclic presched: process p takes trips p, p+np, ...  Both
    // implementations must produce the *same ownership pattern*, not just
    // the same totals.
    let n = 24i64;
    let nproc = 4;
    let id = MachineId::AlliantFx8;

    // native: record owner of each index
    let owners: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let force = Force::with_machine(nproc, Machine::new(id));
    force.run(|p| {
        let me = p.pid() as i64;
        p.presched_do(ForceRange::to(1, n), |i| {
            owners[(i - 1) as usize].store(me, Ordering::Relaxed);
        });
    });

    // language: same recording via a shared array
    let src = format!(
        "\
      Force FMAIN of NP ident ME
      Shared INTEGER OWNER({n})
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, {n}
      OWNER(K) = ME
10    End presched DO
      Join
"
    );
    let out = run_force_source(&src, id, nproc).unwrap();
    let interp_owners = &out.shared_values["OWNER"];

    for i in 0..n as usize {
        let native = owners[i].load(Ordering::Relaxed);
        let interp = match interp_owners[i] {
            Value::Int(v) => v,
            ref other => panic!("non-integer owner {other:?}"),
        };
        assert_eq!(
            native,
            interp,
            "index {} owned by different processes",
            i + 1
        );
        assert_eq!(native, (i as i64) % nproc as i64, "cyclic rule");
    }
}

#[test]
fn produce_consume_handoff() {
    for id in MachineId::all() {
        // native
        let force = Force::with_machine(2, Machine::new(id));
        let chan: Async<i64> = Async::new(force.machine());
        let got = AtomicI64::new(0);
        force.run(|p| {
            if p.pid() == 0 {
                chan.produce(99);
            } else {
                got.store(chan.consume(), Ordering::Relaxed);
            }
        });
        assert_eq!(got.load(Ordering::Relaxed), 99, "{} native", id.name());

        // language
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GOT
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      IF (ME .EQ. 0) THEN
      Produce CHAN = 99
      ELSE
      Consume CHAN into T
      GOT = T
      END IF
      Join
";
        let out = run_force_source(src, id, 2).unwrap();
        assert_eq!(
            out.shared_scalar("GOT"),
            Some(Value::Int(99)),
            "{} interpreted",
            id.name()
        );
    }
}

#[test]
fn barrier_section_equivalence() {
    // In both implementations the barrier section runs exactly once per
    // episode, regardless of force size.
    for nproc in [1, 3, 5] {
        let force = Force::new(nproc);
        let count = AtomicI64::new(0);
        force.run(|p| {
            for _ in 0..7 {
                p.barrier_section(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 7, "native nproc={nproc}");

        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TIMES
      Private INTEGER R
      End declarations
      DO 20 R = 1, 7
      Barrier
      TIMES = TIMES + 1
      End barrier
20    CONTINUE
      Join
";
        let out = run_force_source(src, MachineId::Flex32, nproc).unwrap();
        assert_eq!(
            out.shared_scalar("TIMES"),
            Some(Value::Int(7)),
            "interpreted nproc={nproc}"
        );
    }
}
