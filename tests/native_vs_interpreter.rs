//! Equivalence of the two Force implementations in this repository:
//! the native Rust embedding (`force-core`) and the language pipeline
//! (`force-prep` + `force-fortran`) must compute the same results on the
//! same machine personalities — they are two renderings of one language.

use std::sync::atomic::{AtomicI64, Ordering};

use the_force::compile_force_source;
use the_force::fortran::{RunOutput, Value};
use the_force::machdep::{ExecutorChoice, Machine, MachineId};
use the_force::prelude::*;
use the_force::run_force_source;

#[test]
fn selfscheduled_sum() {
    let n = 200i64;
    let expected: i64 = (1..=n).sum();
    for id in [MachineId::Hep, MachineId::Cray2, MachineId::SequentBalance] {
        // native
        let force = Force::with_machine(3, Machine::new(id));
        let sum = AtomicI64::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, n), |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        let native = sum.load(Ordering::Relaxed);

        // language
        let src = format!(
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, {n}
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Join
"
        );
        let out = run_force_source(&src, id, 3).unwrap();
        let interpreted = out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap();

        assert_eq!(native, expected, "{}", id.name());
        assert_eq!(interpreted, expected, "{}", id.name());
    }
}

#[test]
fn prescheduled_distribution_is_identical() {
    // Cyclic presched: process p takes trips p, p+np, ...  Both
    // implementations must produce the *same ownership pattern*, not just
    // the same totals.
    let n = 24i64;
    let nproc = 4;
    let id = MachineId::AlliantFx8;

    // native: record owner of each index
    let owners: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let force = Force::with_machine(nproc, Machine::new(id));
    force.run(|p| {
        let me = p.pid() as i64;
        p.presched_do(ForceRange::to(1, n), |i| {
            owners[(i - 1) as usize].store(me, Ordering::Relaxed);
        });
    });

    // language: same recording via a shared array
    let src = format!(
        "\
      Force FMAIN of NP ident ME
      Shared INTEGER OWNER({n})
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, {n}
      OWNER(K) = ME
10    End presched DO
      Join
"
    );
    let out = run_force_source(&src, id, nproc).unwrap();
    let interp_owners = &out.shared_values["OWNER"];

    for i in 0..n as usize {
        let native = owners[i].load(Ordering::Relaxed);
        let interp = match interp_owners[i] {
            Value::Int(v) => v,
            ref other => panic!("non-integer owner {other:?}"),
        };
        assert_eq!(
            native,
            interp,
            "index {} owned by different processes",
            i + 1
        );
        assert_eq!(native, (i as i64) % nproc as i64, "cyclic rule");
    }
}

#[test]
fn produce_consume_handoff() {
    for id in MachineId::all() {
        // native
        let force = Force::with_machine(2, Machine::new(id));
        let chan: Async<i64> = Async::new(force.machine());
        let got = AtomicI64::new(0);
        force.run(|p| {
            if p.pid() == 0 {
                chan.produce(99);
            } else {
                got.store(chan.consume(), Ordering::Relaxed);
            }
        });
        assert_eq!(got.load(Ordering::Relaxed), 99, "{} native", id.name());

        // language
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GOT
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      IF (ME .EQ. 0) THEN
      Produce CHAN = 99
      ELSE
      Consume CHAN into T
      GOT = T
      END IF
      Join
";
        let out = run_force_source(src, id, 2).unwrap();
        assert_eq!(
            out.shared_scalar("GOT"),
            Some(Value::Int(99)),
            "{} interpreted",
            id.name()
        );
    }
}

#[test]
fn barrier_section_equivalence() {
    // In both implementations the barrier section runs exactly once per
    // episode, regardless of force size.
    for nproc in [1, 3, 5] {
        let force = Force::new(nproc);
        let count = AtomicI64::new(0);
        force.run(|p| {
            for _ in 0..7 {
                p.barrier_section(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 7, "native nproc={nproc}");

        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TIMES
      Private INTEGER R
      End declarations
      DO 20 R = 1, 7
      Barrier
      TIMES = TIMES + 1
      End barrier
20    CONTINUE
      Join
";
        let out = run_force_source(src, MachineId::Flex32, nproc).unwrap();
        assert_eq!(
            out.shared_scalar("TIMES"),
            Some(Value::Int(7)),
            "interpreted nproc={nproc}"
        );
    }
}

// ---------------------------------------------------------------------------
// Executor matrix: the tree-walking interpreter and the bytecode VM are two
// executors for the *same* language, so every corpus program must produce
// identical observable output — prints, shared memory, linker passes, op
// counters and fault attribution — on every machine personality.
// ---------------------------------------------------------------------------

/// Op counters whose value depends on thread timing (how often a lock was
/// seen held, how many spin retries happened, who stole work).  Everything
/// else — acquisitions, releases, barrier episodes, allocation, process
/// creation, fault bookkeeping — must match exactly between executors.
const TIMING_DEPENDENT_COUNTERS: &[&str] = &[
    "lock_contended",
    "syscalls",
    "parks",
    "spin_retries",
    "steals",
    "steal_attempts_failed",
    "cancellations_observed",
];

fn run_under(
    src: &str,
    id: MachineId,
    nproc: usize,
    executor: ExecutorChoice,
) -> Result<RunOutput, String> {
    // A fresh Machine per run: startup state (e.g. the Sequent ZZSTRT0
    // registry) lives on the machine instance and must not leak between
    // the two executors being compared.
    let (_expanded, engine) = compile_force_source(src, id)
        .unwrap_or_else(|e| panic!("{}: front end rejected program: {e}", id.name()));
    engine
        .run_with(
            nproc,
            RunOptions {
                executor,
                ..RunOptions::default()
            },
        )
        .map_err(|e| e.to_string())
}

fn assert_same_run(label: &str, tree: &RunOutput, vm: &RunOutput) {
    let sorted = |v: &[String]| {
        let mut v = v.to_vec();
        v.sort();
        v
    };
    assert_eq!(
        sorted(&tree.prints),
        sorted(&vm.prints),
        "{label}: prints diverge"
    );
    assert_eq!(
        tree.shared_values, vm.shared_values,
        "{label}: final shared memory diverges"
    );
    assert_eq!(
        tree.linker_commands, vm.linker_commands,
        "{label}: linker passes diverge"
    );
    for ((name, t), (vname, v)) in tree.stats.fields().iter().zip(vm.stats.fields().iter()) {
        assert_eq!(name, vname);
        if TIMING_DEPENDENT_COUNTERS.contains(name) {
            continue;
        }
        assert_eq!(t, v, "{label}: op counter {name} diverges");
    }
}

/// Deterministic language-feature programs: (name, nproc, source).  Each is
/// run under both executors on all six machines.
fn corpus() -> Vec<(&'static str, usize, String)> {
    vec![
        (
            "selfsched-critical-sum",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 60
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Join
"
            .to_string(),
        ),
        (
            "presched-array-prints",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER SQ(12)
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, 12
      SQ(K) = K * K
      PRINT *, K, SQ(K)
10    End presched DO
      Join
"
            .to_string(),
        ),
        (
            "barrier-intrinsics-reals",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER IMOD, IMIN
      Shared REAL RT
      Private INTEGER R
      End declarations
      DO 20 R = 1, 3
      Barrier
      IMOD = IMOD + MOD(17, 5)
      IMIN = MIN(3, MAX(1, 2), 9)
      RT = RT + SQRT(2.25) + ABS(-0.5)
      End barrier
20    CONTINUE
      Join
"
            .to_string(),
        ),
        (
            "produce-consume-stream",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER SUM
      Async INTEGER CHAN
      Private INTEGER K, T
      End declarations
      IF (ME .EQ. 0) THEN
      DO 10 K = 1, 20
      Produce CHAN = K
10    CONTINUE
      END IF
      IF (ME .EQ. 1) THEN
      DO 20 K = 1, 20
      Consume CHAN into T
      Critical SLCK
      SUM = SUM + T
      End critical
20    CONTINUE
      END IF
      Join
"
            .to_string(),
        ),
        (
            "selfsched-pcase",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER A, B, C
      End declarations
      Selfsched Pcase
      Usect
      A = A + 1
      Csect (2 .GT. 1)
      B = B + 1
      Csect (2 .LT. 1)
      C = C + 1
      End pcase
      Join
"
            .to_string(),
        ),
        (
            "forcesub-arguments",
            2,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER OUT(8)
      Externf FILL
      Private INTEGER K
      End declarations
      CALL FILL(OUT, 8)
      Join
      Forcesub FILL(A, N) of NP ident ME
      Private INTEGER J
      INTEGER A(8), N
      End declarations
      Presched DO 10 J = 1, N
      A(J) = J * J
10    End presched DO
      Join
"
            .to_string(),
        ),
        (
            "goto-and-arith",
            3,
            "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      K = 0
50    K = K + 1
      IF (K .LT. 5) GO TO 50
      Critical LCK
      N = N + K * (2 ** 3)
      End critical
      Join
"
            .to_string(),
        ),
    ]
}

#[test]
fn executor_matrix_every_program_on_every_machine() {
    for (name, nproc, src) in corpus() {
        for id in MachineId::all() {
            let label = format!("{name} on {}", id.name());
            let tree = run_under(&src, id, nproc, ExecutorChoice::TreeWalk)
                .unwrap_or_else(|e| panic!("{label}: tree-walker failed: {e}"));
            let vm = run_under(&src, id, nproc, ExecutorChoice::Bytecode)
                .unwrap_or_else(|e| panic!("{label}: bytecode VM failed: {e}"));
            assert_same_run(&label, &tree, &vm);
        }
    }
}

#[test]
fn executor_fault_attribution_is_identical() {
    // Exactly one trip of the self-scheduled loop subscripts out of
    // bounds; both executors must attribute the fault to the same line
    // with the same message.  nproc=1 pins the faulting pid so the whole
    // error string (including the fault-plane attribution) is comparable.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A(20)
      Private INTEGER K
      End declarations
      Selfsched DO 10 K = 1, 20
      A(K) = K
      IF (K .EQ. 13) A(1300) = K
10    End selfsched DO
      Join
";
    for id in MachineId::all() {
        let tree = run_under(src, id, 1, ExecutorChoice::TreeWalk)
            .expect_err("tree-walker must report the out-of-bounds store");
        let vm = run_under(src, id, 1, ExecutorChoice::Bytecode)
            .expect_err("bytecode VM must report the out-of-bounds store");
        assert_eq!(tree, vm, "{}: fault strings diverge", id.name());
        assert!(
            tree.contains("subscript") && tree.contains("line "),
            "{}: fault lost its location or cause: {tree}",
            id.name()
        );

        // With a real force any process may claim trip 13, but only that
        // trip faults, so the reported error is still deterministic.
        let tree = run_under(src, id, 3, ExecutorChoice::TreeWalk).expect_err("tree err");
        let vm = run_under(src, id, 3, ExecutorChoice::Bytecode).expect_err("vm err");
        assert_eq!(tree, vm, "{}: nproc=3 fault strings diverge", id.name());
    }
}

#[test]
fn injected_panics_fault_identically_under_every_schedule_policy() {
    // A native-side DOALL with fault injection armed: under every
    // work-distribution policy the fault plane must catch the panic and
    // attribute it to the doall construct rather than hanging or leaking
    // the panic through `try_execute_with`.
    let policies = [
        SchedulePolicy::Cyclic,
        SchedulePolicy::Block,
        SchedulePolicy::Selfsched { chunk: 1 },
        SchedulePolicy::Guided { min_chunk: 1 },
        SchedulePolicy::Steal,
    ];
    for policy in policies {
        let force = Force::with_machine(3, Machine::new(MachineId::EncoreMultimax));
        let hits = AtomicI64::new(0);
        let err = force
            .try_execute_with(
                RunOptions {
                    injection: Some(FaultInjection {
                        seed: 7,
                        panic_per_mille: 1000,
                        delay_per_mille: 0,
                        spurious_per_mille: 0,
                    }),
                    default_schedule: policy,
                    ..RunOptions::default()
                },
                |p| {
                    p.doall(ForceRange::to(1, 64), |i| {
                        hits.fetch_add(i, Ordering::Relaxed);
                    });
                },
            )
            .expect_err("per-mille 1000 always fires");
        assert_eq!(err.construct, "doall", "{policy:?}");
        assert!(
            err.payload.starts_with("injected fault at doall"),
            "{policy:?}: unexpected payload {}",
            err.payload
        );
    }
}
