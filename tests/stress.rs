//! Stress and endurance tests: many construct episodes back to back,
//! heavy reentry, deep Askfor recursion, and long pipelines — the places
//! where a barrier or full/empty protocol that is *almost* right
//! deadlocks or drops a token.

use std::sync::atomic::{AtomicU64, Ordering};

use the_force::fortran::Value;
use the_force::machdep::{Machine, MachineId};
use the_force::prelude::*;
use the_force::run_force_source;

#[test]
fn thousand_barrier_episodes() {
    let force = Force::new(4);
    let counter = AtomicU64::new(0);
    force.run(|p| {
        for _ in 0..1000 {
            p.barrier_section(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 1000);
}

#[test]
fn alternating_constructs_reentry() {
    // Cycle through every collective construct repeatedly; any protocol
    // that leaks an arrival count or a lock state will wedge or corrupt.
    let force = Force::new(3);
    let acc = AtomicU64::new(0);
    force.run(|p| {
        for round in 0..40 {
            p.selfsched_do(ForceRange::to(1, 10), |i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            });
            p.presched_do(ForceRange::to(1, 10), |i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            });
            p.pcase()
                .sect(|| {
                    acc.fetch_add(1, Ordering::Relaxed);
                })
                .sect(|| {
                    acc.fetch_add(2, Ordering::Relaxed);
                })
                .selfsched();
            p.askfor(
                || vec![4u64],
                |n, pot| {
                    if n > 1 {
                        pot.post(n - 1);
                    } else {
                        acc.fetch_add(10, Ordering::Relaxed);
                    }
                },
            );
            p.resolve(&[1, 2], |c| {
                if c.rank() == 0 {
                    acc.fetch_add(c.index() as u64, Ordering::Relaxed);
                }
            });
            p.barrier();
            let _ = round;
        }
    });
    // per round: 55 + 55 + 3 + 10 + (0 + 1) = 124
    assert_eq!(acc.load(Ordering::Relaxed), 40 * 124);
}

#[test]
fn deep_askfor_recursion() {
    let force = Force::new(4);
    let leaves = AtomicU64::new(0);
    force.run(|p| {
        p.askfor(
            || vec![4096u64],
            |n, pot| {
                if n > 1 {
                    pot.post(n / 2);
                    pot.post(n - n / 2);
                } else {
                    leaves.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
    });
    assert_eq!(leaves.load(Ordering::Relaxed), 4096);
}

#[test]
fn long_async_pipeline_many_tokens() {
    // 10_000 tokens through one cell between two processes, twice (once
    // on hardware full/empty, once on the two-lock emulation).
    for id in [MachineId::Hep, MachineId::SequentBalance] {
        let machine = Machine::new(id);
        let chan: Async<u64> = Async::new(&machine);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 1..=10_000u64 {
                    chan.produce(i);
                }
            });
            s.spawn(|| {
                for _ in 0..10_000u64 {
                    sum.fetch_add(chan.consume(), Ordering::Relaxed);
                }
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 50_005_000, "{}", id.name());
        assert!(!chan.is_full());
    }
}

#[test]
fn interpreter_endurance_many_construct_episodes() {
    // 60 rounds of (selfsched + barrier + critical) in the language, on
    // the two most different machines.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER R, K
      End declarations
      DO 20 R = 1, 60
      Selfsched DO 100 K = 1, 5
      Critical L
      N = N + 1
      End critical
100   End selfsched DO
      Barrier
      N = N + 1
      End barrier
20    CONTINUE
      Join
";
    for id in [MachineId::Hep, MachineId::Cray2] {
        let out = run_force_source(src, id, 4).unwrap();
        assert_eq!(
            out.shared_scalar("N"),
            Some(Value::Int(60 * 6)),
            "{}",
            id.name()
        );
        assert_eq!(out.shared_scalar("ZZNBAR"), Some(Value::Int(0)));
    }
}

#[test]
fn many_forces_sequentially_on_one_machine() {
    // Machine state (stats, startup registry) must tolerate run after run.
    let machine = Machine::new(MachineId::SequentBalance);
    for round in 1..=20u64 {
        let force = Force::with_machine(3, std::sync::Arc::clone(&machine));
        let acc = AtomicU64::new(0);
        force.run(|p| {
            p.selfsched_do(ForceRange::to(1, 20), |i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(acc.load(Ordering::Relaxed), 210, "round {round}");
    }
}

#[test]
fn wide_force_oversubscribed() {
    // 16 processes on however few cores the host has: correctness must
    // not depend on real parallelism.
    let force = Force::new(16);
    let acc = AtomicU64::new(0);
    force.run(|p| {
        p.selfsched_do(ForceRange::to(1, 500), |i| {
            acc.fetch_add(i as u64, Ordering::Relaxed);
        });
        p.barrier();
        p.pcase()
            .sect(|| {
                acc.fetch_add(1, Ordering::Relaxed);
            })
            .selfsched();
    });
    assert_eq!(acc.load(Ordering::Relaxed), 125_250 + 1);
}
