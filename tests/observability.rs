//! Observability: construct-level tracing, contention profiles, and the
//! accounting fixes that keep the numbers honest — the profile must reset
//! per job like the fault plane, and a `preprocess_cached` hit must not
//! attribute miss-path sed/m4 work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use the_force::fortran::Engine;
use the_force::machdep::{ForcePool, Machine, MachineId, RunOptions, TraceConfig};
use the_force::prelude::*;
use the_force::prep;

const SUM_PROGRAM: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 100
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      Barrier
      End barrier
      Join
";

/// `PassCounts` is process-wide, so tests that assert on its deltas must
/// not interleave with other preprocessor runs in this binary.
static PREP_GATE: Mutex<()> = Mutex::new(());

/// Satellite: a `preprocess_cached` *hit* must not bump the sed/m4 pass
/// counters — the miss path's work belongs to the job that missed, and a
/// pooled session re-running a cached program does none of it.
#[test]
fn cached_hits_do_not_count_prep_passes() {
    let _gate = PREP_GATE.lock().unwrap();
    let machine = Machine::new(MachineId::EncoreMultimax);

    // Warm the cache (a miss is allowed to count one sed + two m4 passes).
    let expanded = prep::preprocess_cached(SUM_PROGRAM, MachineId::EncoreMultimax).unwrap();
    let engine = Engine::from_expanded(&expanded, Arc::clone(&machine)).unwrap();
    engine.set_pool(Arc::new(ForcePool::new(4, machine.stats())));

    let before = prep::pass_counts();
    let (hits_before, misses_before) = prep::expansion_cache_stats();
    for _ in 0..3 {
        let hit = prep::preprocess_cached(SUM_PROGRAM, MachineId::EncoreMultimax).unwrap();
        let engine = Engine::from_expanded(&hit, Arc::clone(&machine)).unwrap();
        engine.set_pool(Arc::new(ForcePool::new(4, machine.stats())));
        let out = engine.run(4).unwrap();
        assert_eq!(
            out.shared_scalar("TOTAL"),
            Some(the_force::fortran::Value::Int(5050))
        );
    }
    let after = prep::pass_counts();
    let (hits_after, misses_after) = prep::expansion_cache_stats();
    assert_eq!(after, before, "cache hits must not count sed/m4 passes");
    assert_eq!(
        misses_after, misses_before,
        "re-running the same source misses nothing"
    );
    assert!(hits_after >= hits_before + 3);
}

/// Satellite: pooled-session trace reset.  Job A runs traced, job B
/// untraced on the same resident session; B must report no profile and
/// A's already-captured report must be unaffected (the `ProfileReport`
/// is plain data, detached from the recycled sink).
#[test]
fn pooled_session_trace_resets_between_jobs() {
    let machine = Machine::new(MachineId::SequentBalance);
    let pool = Arc::new(ForcePool::new(4, machine.stats()));
    let force = Force::with_machine(4, Arc::clone(&machine)).with_pool(pool);

    let traced = RunOptions {
        trace: Some(TraceConfig::default()),
        ..RunOptions::default()
    };
    let sum = AtomicU64::new(0);
    force
        .try_execute_with(traced, |p| {
            p.presched_do(ForceRange::to(1, 40), |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            p.critical("HOT", || {});
            p.barrier();
        })
        .unwrap();
    let job_a = force.last_job_profile().expect("job A was traced");
    assert!(job_a.construct("doall").is_some());
    assert_eq!(job_a.doall_trips.iter().sum::<u64>(), 40);
    let job_a_copy = job_a.clone();

    // Job B: same session, tracing off.  No profile, and the hot path
    // reverts to the untraced one.
    force.try_run(|p| p.barrier()).unwrap();
    assert!(
        force.last_job_profile().is_none(),
        "an untraced job must not surface the previous job's profile"
    );
    assert_eq!(job_a, job_a_copy, "A's report is detached plain data");

    // Job C: traced again on the recycled sink — counts start from zero,
    // proving the reset (not accumulation onto job A's numbers).
    force.try_execute_with(traced, |p| p.barrier()).unwrap();
    let job_c = force.last_job_profile().expect("job C was traced");
    assert!(job_c.construct("doall").is_none(), "job C ran no DOALL");
    assert_eq!(job_c.doall_trips.iter().sum::<u64>(), 0);
    assert!(job_c.named_locks.is_empty(), "job C entered no critical");
}

/// The same reset contract through the language front end: a pooled
/// engine session runs job A traced and job B untraced.
#[test]
fn pooled_engine_session_trace_resets_between_jobs() {
    let _gate = PREP_GATE.lock().unwrap();
    let machine = Machine::new(MachineId::Flex32);
    let expanded = prep::preprocess_cached(SUM_PROGRAM, MachineId::Flex32).unwrap();
    let engine = Engine::from_expanded(&expanded, Arc::clone(&machine)).unwrap();
    engine.set_pool(Arc::new(ForcePool::new(3, machine.stats())));

    let traced = RunOptions {
        trace: Some(TraceConfig::default()),
        ..RunOptions::default()
    };
    let out_a = engine.run_with(3, traced).unwrap();
    let job_a = out_a.profile.expect("job A was traced");
    assert!(job_a.construct("interpreter").is_some());
    assert!(
        job_a.named_locks.iter().any(|l| l.name == "LCK"),
        "the user critical section is profiled by name: {:?}",
        job_a
            .named_locks
            .iter()
            .map(|l| &l.name)
            .collect::<Vec<_>>()
    );

    let out_b = engine.run(3).unwrap();
    assert!(out_b.profile.is_none());
    assert!(engine.last_job_profile().is_none());
    assert_eq!(
        out_b.shared_scalar("TOTAL"),
        Some(the_force::fortran::Value::Int(5050))
    );
}

/// The Chrome `trace_event` export is structurally sound: a JSON object
/// with a `traceEvents` array, balanced duration events (every `B` has a
/// matching `E`), and process metadata naming the force.
#[test]
fn chrome_export_is_balanced_and_loadable() {
    let force = Force::new(3).with_tracing(TraceConfig::default());
    force.run(|p| {
        p.presched_do(ForceRange::to(1, 30), |_| {});
        p.critical("X", || {});
        p.barrier();
    });
    let profile = force.last_job_profile().unwrap();
    let json = profile.chrome_trace_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"process_name\""));
    let count = |needle: &str| json.matches(needle).count();
    assert_eq!(
        count("\"ph\":\"B\""),
        count("\"ph\":\"E\""),
        "every duration-begin event pairs with an end"
    );
    assert!(count("\"ph\":\"B\"") > 0, "trace retained construct spans");
    // Balanced braces/brackets — the cheap structural check a JSON
    // parser would do (the export never emits strings with braces).
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            json.matches(open).count(),
            json.matches(close).count(),
            "balanced {open}{close}"
        );
    }
}
