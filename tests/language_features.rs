//! Force-language feature coverage beyond the happy path: nesting,
//! loops around constructs, subroutines, arrays, REAL/LOGICAL data and
//! Fortran control flow mixed with Force constructs.

use the_force::fortran::Value;
use the_force::machdep::MachineId;
use the_force::run_force_source;

fn run(src: &str, nproc: usize) -> the_force::fortran::RunOutput {
    run_force_source(src, MachineId::Flex32, nproc).expect("program runs")
}

#[test]
fn fortran_do_loop_around_force_constructs() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER R, K
      End declarations
      DO 20 R = 1, 5
      Selfsched DO 100 K = 1, 10
      Critical LCK
      N = N + 1
      End critical
100   End selfsched DO
20    CONTINUE
      Join
";
    for nproc in [1, 2, 4] {
        let out = run(src, nproc);
        assert_eq!(
            out.shared_scalar("N"),
            Some(Value::Int(50)),
            "nproc={nproc}"
        );
    }
}

#[test]
fn two_selfsched_loops_with_the_same_variable() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A, B
      Private INTEGER K
      End declarations
      Selfsched DO 100 K = 1, 10
      Critical L1
      A = A + K
      End critical
100   End selfsched DO
      Selfsched DO 200 K = 1, 20
      Critical L2
      B = B + 1
      End critical
200   End selfsched DO
      Join
";
    let out = run(src, 3);
    assert_eq!(out.shared_scalar("A"), Some(Value::Int(55)));
    assert_eq!(out.shared_scalar("B"), Some(Value::Int(20)));
}

#[test]
fn nested_presched_with_inner_fortran_do() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GRID(6,4)
      Private INTEGER I, J
      End declarations
      Presched DO 10 I = 1, 6
      DO 30 J = 1, 4
      GRID(I, J) = I * 10 + J
30    CONTINUE
10    End presched DO
      Join
";
    let out = run(src, 2);
    let grid = &out.shared_values["GRID"];
    // column-major: GRID(i,j) at (i-1) + (j-1)*6
    for i in 1..=6i64 {
        for j in 1..=4i64 {
            let at = (i - 1) + (j - 1) * 6;
            assert_eq!(grid[at as usize], Value::Int(i * 10 + j), "GRID({i},{j})");
        }
    }
}

#[test]
fn logical_shared_flags_and_if_chains() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared LOGICAL FLAG
      Shared INTEGER PATH
      End declarations
      Barrier
      FLAG = .TRUE.
      End barrier
      Barrier
      IF (FLAG .AND. .NOT. .FALSE.) THEN
      PATH = 1
      ELSE IF (FLAG) THEN
      PATH = 2
      ELSE
      PATH = 3
      END IF
      End barrier
      Join
";
    let out = run(src, 3);
    assert_eq!(out.shared_scalar("PATH"), Some(Value::Int(1)));
    assert_eq!(out.shared_scalar("FLAG"), Some(Value::Log(true)));
}

#[test]
fn real_array_prefix_sums_via_barrier_phases() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared REAL X(16)
      Private INTEGER K
      End declarations
      Presched DO 10 K = 1, 16
      X(K) = FLOAT(K)
10    End presched DO
      Barrier
      DO 40 K = 2, 16
      X(K) = X(K) + X(K-1)
40    CONTINUE
      End barrier
      Join
";
    let out = run(src, 4);
    let x = &out.shared_values["X"];
    for k in 1..=16usize {
        let expect = (k * (k + 1) / 2) as f64;
        assert_eq!(x[k - 1], Value::Real(expect), "X({k})");
    }
}

#[test]
fn forcesub_chain_with_arguments() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER OUT(8)
      Externf FILL
      Private INTEGER K
      End declarations
      CALL FILL(OUT, 8)
      Join
      Forcesub FILL(A, N) of NP ident ME
      Private INTEGER J
      End declarations
      Presched DO 10 J = 1, N
      A(J) = J * J
10    End presched DO
      Join
";
    // FILL's dummy A has no declared dims — declare them:
    let src = src.replace(
        "      Forcesub FILL(A, N) of NP ident ME\n      Private INTEGER J\n",
        "      Forcesub FILL(A, N) of NP ident ME\n      Private INTEGER J\n      INTEGER A(8), N\n",
    );
    let out = run(&src, 2);
    let a = &out.shared_values["OUT"];
    for j in 1..=8i64 {
        assert_eq!(a[(j - 1) as usize], Value::Int(j * j), "OUT({j})");
    }
}

#[test]
fn goto_spaghetti_in_force_code() {
    // The macro output itself is GOTO-heavy; user GOTO must coexist.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      Private INTEGER K
      End declarations
      K = 0
50    K = K + 1
      IF (K .LT. 5) GO TO 50
      Critical LCK
      N = N + K
      End critical
      Join
";
    let out = run(src, 3);
    assert_eq!(out.shared_scalar("N"), Some(Value::Int(15)));
}

#[test]
fn intrinsic_functions_in_force_programs() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER IMOD, IMIN
      Shared REAL RT
      End declarations
      Barrier
      IMOD = MOD(17, 5)
      IMIN = MIN(3, MAX(1, 2), 9)
      RT = SQRT(2.25) + ABS(-0.5)
      End barrier
      Join
";
    let out = run(src, 2);
    assert_eq!(out.shared_scalar("IMOD"), Some(Value::Int(2)));
    assert_eq!(out.shared_scalar("IMIN"), Some(Value::Int(2)));
    assert_eq!(out.shared_scalar("RT"), Some(Value::Real(2.0)));
}

#[test]
fn pid_and_nproc_are_visible_per_process() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER SEEN(8), TOTALP
      End declarations
      SEEN(ME + 1) = 1
      Critical LCK
      TOTALP = NP
      End critical
      Join
";
    let out = run(src, 5);
    let seen = &out.shared_values["SEEN"];
    for (p, s) in seen.iter().enumerate().take(5) {
        assert_eq!(*s, Value::Int(1), "process {p} registered");
    }
    for s in seen.iter().take(8).skip(5) {
        assert_eq!(*s, Value::Int(0));
    }
    assert_eq!(out.shared_scalar("TOTALP"), Some(Value::Int(5)));
}

#[test]
fn print_collects_from_all_processes() {
    let src = "\
      Force FMAIN of NP ident ME
      End declarations
      PRINT *, 'HELLO FROM', ME
      Join
";
    let out = run(src, 4);
    assert_eq!(out.prints.len(), 4);
    let mut ids: Vec<String> = out.prints.clone();
    ids.sort();
    for (i, line) in ids.iter().enumerate() {
        assert_eq!(line, &format!("HELLO FROM {i}"));
    }
}

#[test]
fn selfsched_pcase_with_conditions() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER A, B, C
      End declarations
      Selfsched Pcase
      Usect
      A = A + 1
      Csect (2 .GT. 1)
      B = B + 1
      Csect (2 .LT. 1)
      C = C + 1
      End pcase
      Join
";
    for nproc in [1, 2, 6] {
        let out = run(src, nproc);
        assert_eq!(out.shared_scalar("A"), Some(Value::Int(1)), "nproc={nproc}");
        assert_eq!(out.shared_scalar("B"), Some(Value::Int(1)), "nproc={nproc}");
        assert_eq!(out.shared_scalar("C"), Some(Value::Int(0)), "nproc={nproc}");
    }
}

#[test]
fn producer_consumer_loop_through_async_variable() {
    // A bounded stream: process 0 produces 30 numbers, the others compete
    // to consume them; a shared count of consumed items terminates.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER SUM
      Async INTEGER CHAN
      Private INTEGER K, T
      End declarations
      IF (ME .EQ. 0) THEN
      DO 10 K = 1, 30
      Produce CHAN = K
10    CONTINUE
      END IF
      IF (ME .EQ. 1) THEN
      DO 20 K = 1, 30
      Consume CHAN into T
      Critical SLCK
      SUM = SUM + T
      End critical
20    CONTINUE
      END IF
      Join
";
    let out = run_force_source(src, MachineId::Hep, 2).unwrap();
    assert_eq!(out.shared_scalar("SUM"), Some(Value::Int(465)));
    let out = run_force_source(src, MachineId::Cray2, 2).unwrap();
    assert_eq!(out.shared_scalar("SUM"), Some(Value::Int(465)));
}

#[test]
fn isfull_tests_the_state_without_consuming() {
    // §3.4: "The state can also be tested and initialized to empty."
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER BEFORE, AFTER, GONE
      Async INTEGER CHAN
      Private INTEGER T
      End declarations
      Barrier
      IF (Isfull(CHAN)) THEN
      BEFORE = 1
      ELSE
      BEFORE = 0
      END IF
      Produce CHAN = 5
      IF (Isfull(CHAN)) THEN
      AFTER = 1
      END IF
      Consume CHAN into T
      IF (.NOT. Isfull(CHAN)) THEN
      GONE = 1
      END IF
      End barrier
      Join
";
    for id in [
        MachineId::Hep,
        MachineId::EncoreMultimax,
        MachineId::Cray2,
        MachineId::Flex32,
    ] {
        let out = run_force_source(src, id, 3).unwrap();
        assert_eq!(
            out.shared_scalar("BEFORE"),
            Some(Value::Int(0)),
            "{}",
            id.name()
        );
        assert_eq!(
            out.shared_scalar("AFTER"),
            Some(Value::Int(1)),
            "{}",
            id.name()
        );
        assert_eq!(
            out.shared_scalar("GONE"),
            Some(Value::Int(1)),
            "{}",
            id.name()
        );
    }
}

#[test]
fn isfull_polling_loop_synchronizes_a_flag() {
    // A flag-polling idiom: process 1 spins on Isfull until process 0
    // produces, then consumes.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GOT
      Async INTEGER FLAG
      Private INTEGER T
      End declarations
      IF (ME .EQ. 0) THEN
      Produce FLAG = 77
      END IF
      IF (ME .EQ. 1) THEN
30    IF (.NOT. Isfull(FLAG)) GO TO 30
      Consume FLAG into T
      GOT = T
      END IF
      Join
";
    let out = run_force_source(src, MachineId::Hep, 2).unwrap();
    assert_eq!(out.shared_scalar("GOT"), Some(Value::Int(77)));
    let out = run_force_source(src, MachineId::SequentBalance, 2).unwrap();
    assert_eq!(out.shared_scalar("GOT"), Some(Value::Int(77)));
}

#[test]
fn async_array_wavefront_in_the_language() {
    // A software pipeline through an asynchronous array: stage ME
    // consumes slot ME, increments, produces slot ME+1; process 0 feeds
    // slot 1 and collects from slot NP.  (Slots are 1-based.)
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER OUT(20)
      Async INTEGER SLOT(8)
      Private INTEGER R, V
      End declarations
      IF (ME .EQ. 0) THEN
      DO 10 R = 1, 20
      Produce SLOT(1) = R
      Consume SLOT(NP) into V
      OUT(R) = V
10    CONTINUE
      ELSE
      DO 20 R = 1, 20
      Consume SLOT(ME) into V
      Produce SLOT(ME + 1) = V + 1
20    CONTINUE
      END IF
      Join
";
    for id in [MachineId::Hep, MachineId::EncoreMultimax, MachineId::Cray2] {
        let nproc = 4;
        let out = run_force_source(src, id, nproc).unwrap();
        let outs = &out.shared_values["OUT"];
        for r in 1..=20i64 {
            // r passes through nproc-1 incrementing stages
            assert_eq!(
                outs[(r - 1) as usize],
                Value::Int(r + nproc as i64 - 1),
                "{} OUT({r})",
                id.name()
            );
        }
    }
}

#[test]
fn async_array_elements_are_independent_in_the_language() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER F1, F3, E2
      Async INTEGER C(3)
      Private INTEGER T
      End declarations
      Barrier
      Produce C(1) = 10
      Produce C(3) = 30
      IF (Isfull(C(1))) THEN
      F1 = 1
      END IF
      IF (Isfull(C(3))) THEN
      F3 = 1
      END IF
      IF (.NOT. Isfull(C(2))) THEN
      E2 = 1
      END IF
      Consume C(1) into T
      Void C(3)
      End barrier
      Join
";
    for id in [MachineId::Hep, MachineId::SequentBalance, MachineId::Flex32] {
        let out = run_force_source(src, id, 2).unwrap();
        assert_eq!(
            out.shared_scalar("F1"),
            Some(Value::Int(1)),
            "{}",
            id.name()
        );
        assert_eq!(
            out.shared_scalar("F3"),
            Some(Value::Int(1)),
            "{}",
            id.name()
        );
        assert_eq!(
            out.shared_scalar("E2"),
            Some(Value::Int(1)),
            "{}",
            id.name()
        );
    }
}

#[test]
fn doubly_nested_doall_covers_the_pair_space() {
    // §3.3: "In case of singly (doubly) nested loops, the loop indices
    // (index pairs) specify concurrently executable sequential streams."
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER GRID(6,5), COUNT
      Private INTEGER I, J
      End declarations
      Selfsched DO2 100 I = 1, 6 ; J = 1, 5
      GRID(I, J) = GRID(I, J) + I * 10 + J
      Critical CL
      COUNT = COUNT + 1
      End critical
100   End selfsched DO2
      Presched DO2 200 I = 1, 6 ; J = 1, 5
      GRID(I, J) = GRID(I, J) + 1000
200   End presched DO2
      Join
";
    for id in [MachineId::Hep, MachineId::EncoreMultimax, MachineId::Cray2] {
        for nproc in [1, 3, 4] {
            let out = run_force_source(src, id, nproc).unwrap();
            assert_eq!(
                out.shared_scalar("COUNT"),
                Some(Value::Int(30)),
                "{} nproc={nproc}",
                id.name()
            );
            let grid = &out.shared_values["GRID"];
            for i in 1..=6i64 {
                for j in 1..=5i64 {
                    let at = ((i - 1) + (j - 1) * 6) as usize;
                    assert_eq!(
                        grid[at],
                        Value::Int(1000 + i * 10 + j),
                        "{} nproc={nproc} GRID({i},{j})",
                        id.name()
                    );
                }
            }
        }
    }
}

#[test]
fn doubly_nested_doall_with_strides_and_empty_ranges() {
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER COUNT, EMPTYC
      Private INTEGER I, J
      End declarations
      Selfsched DO2 100 I = 1, 10, 3 ; J = 10, 2, -4
      Critical CL
      COUNT = COUNT + 1
      End critical
100   End selfsched DO2
      Presched DO2 200 I = 5, 1 ; J = 1, 3
      EMPTYC = EMPTYC + 1
200   End presched DO2
      Join
";
    let out = run_force_source(src, MachineId::Flex32, 3).unwrap();
    // outer trips: 1,4,7,10 = 4; inner: 10,6,2 = 3 -> 12 pairs
    assert_eq!(out.shared_scalar("COUNT"), Some(Value::Int(12)));
    assert_eq!(out.shared_scalar("EMPTYC"), Some(Value::Int(0)));
}

#[test]
fn arithmetic_if_in_force_programs() {
    // The classic F66 three-way branch, still common in 1989 code.
    let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER WHICH(3)
      Private INTEGER X, R
      End declarations
      Barrier
      DO 40 R = 1, 3
      X = R - 2
      IF (X) 10, 20, 30
10    WHICH(1) = WHICH(1) + 1
      GO TO 40
20    WHICH(2) = WHICH(2) + 1
      GO TO 40
30    WHICH(3) = WHICH(3) + 1
40    CONTINUE
      End barrier
      Join
";
    let out = run(src, 3);
    let which = &out.shared_values["WHICH"];
    assert_eq!(which[0], Value::Int(1), "negative branch");
    assert_eq!(which[1], Value::Int(1), "zero branch");
    assert_eq!(which[2], Value::Int(1), "positive branch");
}
