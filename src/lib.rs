//! # the-force — a Rust reproduction of *The Force: A Highly Portable
//! Parallel Programming Language* (Jordan, Benten, Alaghband & Jakob,
//! ICPP 1989)
//!
//! This facade crate ties together the four subsystems of the
//! reproduction:
//!
//! * [`machdep`] ([`force_machdep`]) — the machine-dependent layer:
//!   generic locks, shared-memory designation, process-creation models,
//!   and six simulated machine personalities (HEP, Flex/32, Encore
//!   Multimax, Sequent Balance, Alliant FX/8, Cray-2);
//! * [`core`] ([`force_core`]) — the machine-independent Force runtime as
//!   a native Rust API: the force of processes, barriers (with sections),
//!   prescheduled/selfscheduled DOALL, Pcase, Askfor, Resolve, critical
//!   sections, and full/empty asynchronous variables;
//! * [`prep`] ([`force_prep`]) — the Force *language*: a sed-like phase-1
//!   translator and a from-scratch m4-subset macro processor implementing
//!   the paper's two-level macro scheme, plus per-machine driver
//!   generation;
//! * [`fortran`] ([`force_fortran`]) — the mini-Fortran substrate that
//!   executes the preprocessor's output with N concurrent interpreter
//!   processes over shared COMMON storage.
//!
//! ## Quickstart (native API)
//!
//! ```
//! use the_force::prelude::*;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let force = Force::new(4);
//! let sum = AtomicU64::new(0);
//! force.run(|p| {
//!     p.selfsched_do(ForceRange::to(1, 100), |i| {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 5050);
//! ```
//!
//! ## Quickstart (the Force language)
//!
//! ```
//! use the_force::run_force_source;
//! use the_force::machdep::MachineId;
//!
//! let source = "\
//!       Force FMAIN of NP ident ME
//!       Shared INTEGER TOTAL
//!       Private INTEGER K
//!       End declarations
//!       Selfsched DO 100 K = 1, 10
//!       Critical LCK
//!       TOTAL = TOTAL + K
//!       End critical
//! 100   End selfsched DO
//!       Join
//! ";
//! // The same source runs, unmodified, on any of the six machines.
//! for id in MachineId::all() {
//!     let out = run_force_source(source, id, 4).unwrap();
//!     assert_eq!(out.shared_scalar("TOTAL").unwrap().as_int(0).unwrap(), 55);
//! }
//! ```
//!
//! ## Observability
//!
//! Both front ends can trace a job: set
//! [`RunOptions::trace`](machdep::RunOptions) (or
//! `Force::with_tracing`) and read the resulting
//! [`ProfileReport`](machdep::ProfileReport) from
//! `Force::last_job_profile` / `Engine::last_job_profile` — per-construct
//! wait/hold histograms, named-lock contention, barrier arrival spread,
//! DOALL trip distribution, and a Chrome `trace_event` export
//! ([`ProfileReport::chrome_trace_json`](machdep::ProfileReport::chrome_trace_json)).

pub use force_core as core;
pub use force_fortran as fortran;
pub use force_machdep as machdep;
pub use force_prep as prep;

/// Convenience prelude: the native Force API plus machine personalities.
pub mod prelude {
    pub use force_core::prelude::*;
}

use std::sync::Arc;

/// Errors from the end-to-end language pipeline.
#[derive(Debug)]
pub enum ForceError {
    /// Preprocessing failed.
    Prep(force_prep::PrepError),
    /// Compilation or execution failed.
    Fortran(force_fortran::FortError),
    /// A process of the force faulted (panic, injected fault, or deadlock
    /// watchdog trip), and the fault plane contained it instead of letting
    /// the force hang.
    ProcessFault {
        /// The faulting process identifier.
        pid: usize,
        /// The Force construct the process faulted in ("barrier",
        /// "critical", "consume", ...).
        construct: &'static str,
        /// The fault description (panic message, injected-fault tag, or
        /// watchdog report).
        payload: String,
    },
    /// A served job missed its deadline — a latency outcome, not a
    /// program bug: the job was torn down (or expired in queue) because
    /// its time budget ran out, and retrying with a larger budget may
    /// well succeed.
    DeadlineExceeded {
        /// Whether the job ever started running (`false`: it expired
        /// while still queued).
        ran: bool,
    },
    /// The job server refused or dropped the job under load (admission
    /// backpressure, drain, or load shedding) — nothing about the job
    /// itself failed, and resubmitting later is the expected response.
    Rejected {
        /// Human-readable reason (queue-full, shutting-down, shed).
        reason: String,
    },
}

impl ForceError {
    /// Whether this error is *load-induced* — the serving layer's
    /// flow-control talking (deadline missed, queue full, shed) — as
    /// opposed to a real program fault.  Load-induced errors are safe to
    /// retry later; faults generally are not.
    pub fn is_load_induced(&self) -> bool {
        matches!(
            self,
            ForceError::DeadlineExceeded { .. } | ForceError::Rejected { .. }
        )
    }

    /// Map a served job's terminal [`JobOutcome`](machdep::JobOutcome)
    /// onto the facade's error taxonomy: `Completed` is `Ok`, everything
    /// else picks the matching variant (`Shed` and rejections both
    /// become [`ForceError::Rejected`], keeping "the server said no"
    /// distinguishable from "your program is broken").
    pub fn from_outcome(outcome: machdep::JobOutcome) -> Result<(), ForceError> {
        match outcome {
            machdep::JobOutcome::Completed { .. } => Ok(()),
            machdep::JobOutcome::Faulted { error, .. } => Err(match error {
                machdep::JobError::Fault(f) => f.into(),
                machdep::JobError::Deterministic(msg) => ForceError::Fortran(
                    force_fortran::FortError::general(force_fortran::FortErrorKind::Structure(msg)),
                ),
            }),
            machdep::JobOutcome::DeadlineExceeded { ran } => {
                Err(ForceError::DeadlineExceeded { ran })
            }
            machdep::JobOutcome::Shed => Err(ForceError::Rejected {
                reason: "shed under load".into(),
            }),
        }
    }
}

impl std::fmt::Display for ForceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForceError::Prep(e) => write!(f, "preprocessor: {e}"),
            ForceError::Fortran(e) => write!(f, "execution: {e}"),
            ForceError::ProcessFault {
                pid,
                construct,
                payload,
            } => write!(f, "process {pid} faulted in {construct}: {payload}"),
            ForceError::DeadlineExceeded { ran: true } => {
                write!(f, "deadline exceeded: job cancelled while running")
            }
            ForceError::DeadlineExceeded { ran: false } => {
                write!(f, "deadline exceeded: job expired in queue")
            }
            ForceError::Rejected { reason } => write!(f, "rejected: {reason}"),
        }
    }
}

impl std::error::Error for ForceError {}

impl From<force_prep::PrepError> for ForceError {
    fn from(e: force_prep::PrepError) -> Self {
        ForceError::Prep(e)
    }
}

impl From<force_fortran::FortError> for ForceError {
    fn from(e: force_fortran::FortError) -> Self {
        ForceError::Fortran(e)
    }
}

impl From<machdep::ProcessFault> for ForceError {
    fn from(f: machdep::ProcessFault) -> Self {
        ForceError::ProcessFault {
            pid: f.pid,
            construct: f.construct,
            payload: f.payload,
        }
    }
}

impl From<machdep::RejectReason> for ForceError {
    fn from(reason: machdep::RejectReason) -> Self {
        ForceError::Rejected {
            reason: reason.to_string(),
        }
    }
}

/// Run a Force-language source end to end: preprocess for `machine`
/// (through the expansion cache — re-running the same source skips the
/// sed/m4 passes), load onto a fresh instance of that machine, execute
/// with a force of `nproc` processes, and return the observable output.
///
/// This is the whole §4.3 pipeline in one call — the moral equivalent of
/// `forcecompile prog.force && a.out`.
pub fn run_force_source(
    source: &str,
    machine: machdep::MachineId,
    nproc: usize,
) -> Result<fortran::RunOutput, ForceError> {
    let expanded = prep::preprocess_cached(source, machine)?;
    let m = machdep::Machine::new(machine);
    let engine = fortran::Engine::from_expanded(&expanded, Arc::clone(&m))?;
    Ok(engine.run(nproc)?)
}

/// Preprocess (through the expansion cache) and load a Force program
/// without running it (useful when a caller wants to run the same engine
/// several times or inspect the expansion).
pub fn compile_force_source(
    source: &str,
    machine: machdep::MachineId,
) -> Result<(Arc<prep::ExpandedProgram>, fortran::Engine), ForceError> {
    let expanded = prep::preprocess_cached(source, machine)?;
    let m = machdep::Machine::new(machine);
    let engine = fortran::Engine::from_expanded(&expanded, m)?;
    Ok((expanded, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machdep::MachineId;

    #[test]
    fn end_to_end_pipeline_runs() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Critical L
      N = N + 1
      End critical
      Join
";
        let out = run_force_source(src, MachineId::Flex32, 5).unwrap();
        assert_eq!(out.shared_scalar("N").unwrap(), fortran::Value::Int(5));
    }

    #[test]
    fn compile_then_run_repeatedly() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Critical L
      N = N + 1
      End critical
      Join
";
        let (expanded, engine) = compile_force_source(src, MachineId::Hep).unwrap();
        assert!(expanded.code.contains("ZZFELCK"));
        for nproc in [1, 2, 4] {
            let out = engine.run(nproc).unwrap();
            assert_eq!(
                out.shared_scalar("N").unwrap(),
                fortran::Value::Int(nproc as i64)
            );
        }
    }

    #[test]
    fn traced_language_run_yields_a_profile() {
        let src = "\
      Force FMAIN of NP ident ME
      Shared INTEGER N
      End declarations
      Barrier
      N = N + 1
      End barrier
      Join
";
        let (_expanded, engine) = compile_force_source(src, MachineId::SequentBalance).unwrap();
        let opts = machdep::RunOptions {
            trace: Some(machdep::TraceConfig::default()),
            ..machdep::RunOptions::default()
        };
        let out = engine.run_with(3, opts).unwrap();
        let profile = out.profile.expect("traced run yields a profile");
        assert!(profile.construct("interpreter").is_some());
        let json = profile.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
    }

    #[test]
    fn errors_are_reported_with_phase() {
        let err = run_force_source("      Consume X\n", MachineId::Hep, 1).unwrap_err();
        assert!(err.to_string().starts_with("preprocessor:"), "{err}");
    }

    #[test]
    fn serving_errors_are_distinguishable_from_faults() {
        // Callers must be able to tell shed load / missed deadlines from
        // real program faults — the former retry later, the latter don't.
        let deadline = ForceError::DeadlineExceeded { ran: true };
        let rejected: ForceError = machdep::RejectReason::QueueFull {
            tenant: "acme".into(),
            capacity: 64,
        }
        .into();
        let fault: ForceError = machdep::ProcessFault {
            pid: 2,
            construct: "barrier",
            payload: "boom".into(),
        }
        .into();
        assert!(deadline.is_load_induced());
        assert!(rejected.is_load_induced());
        assert!(!fault.is_load_induced());
        assert_eq!(
            deadline.to_string(),
            "deadline exceeded: job cancelled while running"
        );
        assert_eq!(
            ForceError::DeadlineExceeded { ran: false }.to_string(),
            "deadline exceeded: job expired in queue"
        );
        assert_eq!(
            rejected.to_string(),
            "rejected: tenant `acme` queue full (capacity 64)"
        );
        assert_eq!(fault.to_string(), "process 2 faulted in barrier: boom");
    }

    #[test]
    fn job_outcomes_round_trip_into_force_errors() {
        use machdep::{JobError, JobOutcome, ProcessFault};
        assert!(ForceError::from_outcome(JobOutcome::Completed { retries: 3 }).is_ok());
        match ForceError::from_outcome(JobOutcome::DeadlineExceeded { ran: false }) {
            Err(ForceError::DeadlineExceeded { ran: false }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        match ForceError::from_outcome(JobOutcome::Shed) {
            Err(e @ ForceError::Rejected { .. }) => {
                assert!(e.is_load_induced());
                assert_eq!(e.to_string(), "rejected: shed under load");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        match ForceError::from_outcome(JobOutcome::Faulted {
            error: JobError::Fault(ProcessFault {
                pid: 1,
                construct: "doall",
                payload: "boom".into(),
            }),
            retries: 2,
        }) {
            Err(ForceError::ProcessFault { pid: 1, .. }) => {}
            other => panic!("expected ProcessFault, got {other:?}"),
        }
        match ForceError::from_outcome(JobOutcome::Faulted {
            error: JobError::Deterministic("line 3: divide by zero".into()),
            retries: 0,
        }) {
            Err(e @ ForceError::Fortran(_)) => {
                assert!(!e.is_load_induced());
                assert!(e.to_string().contains("divide by zero"));
            }
            other => panic!("expected Fortran, got {other:?}"),
        }
    }
}
