//! Adaptive quadrature with the Askfor construct.
//!
//! §3.3: Askfor "provides a means of work distribution in cases where the
//! degree of concurrency is not known at compile time.  Rather the
//! program can request during run time that a new concurrent instance of
//! the code segment is executed."  Adaptive quadrature is the canonical
//! case: an interval's refinement depends on the integrand, so the work
//! tree is only discovered while integrating it.
//!
//! The example integrates a sharply peaked function, compares the Askfor
//! force against a statically prescheduled split, and shows the dynamic
//! version both balances better and matches the analytic answer at any
//! force size.
//!
//! ```sh
//! cargo run --example askfor_quadrature [nproc]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use the_force::prelude::*;

/// A nasty integrand: a narrow spike at x = 0.3 on a gentle slope.
fn f(x: f64) -> f64 {
    let d = x - 0.3;
    1.0 / (d * d + 1e-4) + 0.5 * x
}

/// Analytic integral of `f` on [a, b].
fn exact(a: f64, b: f64) -> f64 {
    let anti = |x: f64| {
        let d = x - 0.3;
        (1.0 / 1e-2) * (d / 1e-2).atan() + 0.25 * x * x
    };
    anti(b) - anti(a)
}

#[derive(Clone, Copy)]
struct Interval {
    a: f64,
    b: f64,
}

/// Simpson estimate on [a, b].
fn simpson(a: f64, b: f64) -> f64 {
    let m = 0.5 * (a + b);
    (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
}

/// Add a partial sum into a bit-packed shared accumulator.
fn add_f64(acc: &AtomicU64, v: f64) {
    let mut cur = acc.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match acc.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

fn askfor_integral(nproc: usize, tol: f64) -> (f64, u64) {
    let force = Force::with_machine(nproc, Machine::new(MachineId::Flex32));
    let total = AtomicU64::new(0f64.to_bits());
    let intervals = AtomicU64::new(0);
    force.run(|p| {
        p.askfor(
            || vec![Interval { a: 0.0, b: 1.0 }],
            |iv, pot| {
                intervals.fetch_add(1, Ordering::Relaxed);
                let whole = simpson(iv.a, iv.b);
                let m = 0.5 * (iv.a + iv.b);
                let halves = simpson(iv.a, m) + simpson(m, iv.b);
                if (whole - halves).abs() < tol * (iv.b - iv.a) {
                    add_f64(&total, halves);
                } else {
                    // Not converged: ask for two new concurrent instances.
                    pot.post(Interval { a: iv.a, b: m });
                    pot.post(Interval { a: m, b: iv.b });
                }
            },
        );
    });
    (
        f64::from_bits(total.load(Ordering::Relaxed)),
        intervals.load(Ordering::Relaxed),
    )
}

/// Static alternative: split [0,1] into nproc equal prescheduled panels
/// and refine each sequentially — the load lands on whoever owns the
/// spike.
fn static_integral(nproc: usize, tol: f64) -> f64 {
    let force = Force::with_machine(nproc, Machine::new(MachineId::Flex32));
    let total = AtomicU64::new(0f64.to_bits());
    force.run(|p| {
        p.presched_do(ForceRange::to(0, nproc as i64 - 1), |k| {
            let a = k as f64 / nproc as f64;
            let b = (k + 1) as f64 / nproc as f64;
            let mut stack = vec![Interval { a, b }];
            let mut acc = 0.0;
            while let Some(iv) = stack.pop() {
                let whole = simpson(iv.a, iv.b);
                let m = 0.5 * (iv.a + iv.b);
                let halves = simpson(iv.a, m) + simpson(m, iv.b);
                if (whole - halves).abs() < tol * (iv.b - iv.a) {
                    acc += halves;
                } else {
                    stack.push(Interval { a: iv.a, b: m });
                    stack.push(Interval { a: m, b: iv.b });
                }
            }
            add_f64(&total, acc);
        });
    });
    f64::from_bits(total.load(Ordering::Relaxed))
}

fn main() {
    let nproc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let tol = 1e-10;
    let truth = exact(0.0, 1.0);
    println!("adaptive quadrature of a spiked integrand on [0,1], truth = {truth:.9}");

    for np in [1, 2, nproc] {
        let t0 = std::time::Instant::now();
        let (v, n) = askfor_integral(np, tol);
        let dt = t0.elapsed();
        println!(
            "askfor  force of {np}: {v:.9} (err {:.2e}, {n} intervals, {dt:?})",
            (v - truth).abs()
        );
        assert!((v - truth).abs() < 1e-5, "askfor integral diverged");
    }
    let t0 = std::time::Instant::now();
    let v = static_integral(nproc, tol);
    let dt = t0.elapsed();
    println!(
        "static  force of {nproc}: {v:.9} (err {:.2e}, {dt:?})",
        (v - truth).abs()
    );
    println!(
        "OK: the run-time-requested work tree matches the analytic answer at every force size"
    );
}
