//! Jacobi relaxation on a 2-D grid — the classic tightly coupled
//! numerical kernel the Force was designed around (§1: the language
//! "evolved in the course of implementing numerical algorithms").
//!
//! Structure per iteration:
//!   * prescheduled DOALL over interior rows (each is a barrier at exit),
//!   * a residual reduction through a critical section,
//!   * a barrier section where one process checks convergence.
//!
//! The result is independent of the number of processes; the example
//! verifies the parallel solution against a sequential solver.
//!
//! ```sh
//! cargo run --example jacobi [nproc] [grid]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use the_force::prelude::*;

const TOL: f64 = 1e-6;
const MAX_ITERS: usize = 10_000;

/// One Jacobi sweep source term: fixed boundary, zero interior start.
fn boundary(i: usize, j: usize, _n: usize) -> f64 {
    if i == 0 {
        100.0
    } else if j == 0 {
        75.0
    } else {
        // the far edges and the interior both start at zero
        0.0
    }
}

fn sequential(n: usize) -> (Vec<f64>, usize) {
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = boundary(i, j, n);
            b[i * n + j] = a[i * n + j];
        }
    }
    for iter in 1..=MAX_ITERS {
        let mut residual: f64 = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let v = 0.25
                    * (a[(i - 1) * n + j]
                        + a[(i + 1) * n + j]
                        + a[i * n + j - 1]
                        + a[i * n + j + 1]);
                residual = residual.max((v - a[i * n + j]).abs());
                b[i * n + j] = v;
            }
        }
        std::mem::swap(&mut a, &mut b);
        if residual < TOL {
            return (a, iter);
        }
    }
    (a, MAX_ITERS)
}

fn parallel(n: usize, nproc: usize) -> (Vec<f64>, usize) {
    let force = Force::with_machine(nproc, Machine::new(MachineId::AlliantFx8));
    let a = SharedF64Matrix::zeroed(n, n);
    let b = SharedF64Matrix::zeroed(n, n);
    // f64 residual max via bit-packed atomic (monotone under max).
    let residual_bits = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let iters = AtomicU64::new(0);

    force.run(|p| {
        // Initialize boundaries in parallel.
        p.presched_do(ForceRange::to(0, (n * n - 1) as i64), |k| {
            let (i, j) = ((k as usize) / n, (k as usize) % n);
            a.set(i, j, boundary(i, j, n));
            b.set(i, j, boundary(i, j, n));
        });

        for iter in 1..=MAX_ITERS {
            if done.load(Ordering::Acquire) {
                break;
            }
            let src = if iter % 2 == 1 { &a } else { &b };
            let dst = if iter % 2 == 1 { &b } else { &a };

            // Each process sweeps its rows and keeps a private residual.
            let mut my_residual: f64 = 0.0;
            p.presched_do(ForceRange::to(1, (n - 2) as i64), |row| {
                let i = row as usize;
                for j in 1..n - 1 {
                    let v = 0.25
                        * (src.get(i - 1, j)
                            + src.get(i + 1, j)
                            + src.get(i, j - 1)
                            + src.get(i, j + 1));
                    my_residual = my_residual.max((v - src.get(i, j)).abs());
                    dst.set(i, j, v);
                }
            });

            // Reduce the residual through a critical section (the Force
            // idiom for reductions).
            p.critical("RESID", || {
                let cur = f64::from_bits(residual_bits.load(Ordering::Relaxed));
                if my_residual > cur {
                    residual_bits.store(my_residual.to_bits(), Ordering::Relaxed);
                }
            });

            // One process tests convergence while the others wait.
            p.barrier_section(|| {
                let r = f64::from_bits(residual_bits.load(Ordering::Relaxed));
                iters.store(iter as u64, Ordering::Relaxed);
                if r < TOL {
                    done.store(true, Ordering::Release);
                }
                residual_bits.store(0, Ordering::Relaxed);
            });
        }
    });

    let final_iters = iters.load(Ordering::Relaxed) as usize;
    let result = if final_iters % 2 == 1 { &b } else { &a };
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = result.get(i, j);
        }
    }
    (out, final_iters)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nproc: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    });
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(48);

    println!("Jacobi relaxation: {n}x{n} grid, force of {nproc} processes");
    let t0 = std::time::Instant::now();
    let (seq, seq_iters) = sequential(n);
    let seq_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let (par, par_iters) = parallel(n, nproc);
    let par_time = t0.elapsed();

    let max_diff = seq
        .iter()
        .zip(par.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("sequential: {seq_iters} iterations in {seq_time:?}");
    println!("parallel:   {par_iters} iterations in {par_time:?}");
    println!("max |seq - par| = {max_diff:.2e}");
    assert!(
        max_diff < 1e-9,
        "parallel Jacobi diverged from the sequential solution"
    );
    assert_eq!(seq_iters, par_iters, "iteration counts must agree");
    println!("OK: identical result, independent of the number of processes");
}
