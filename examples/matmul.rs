//! Blocked matrix multiply with selfscheduled work distribution.
//!
//! Row-blocks of `C = A * B` are handed out dynamically, so the same
//! program balances load whether the force has 1 process or 16 — the
//! "independence of the number of processes" claim, verified here against
//! a sequential multiply and across several force sizes.
//!
//! ```sh
//! cargo run --example matmul [n] [block]
//! ```

use the_force::prelude::*;

fn fill(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n * n).map(|k| ((k % 13) as f64) - 6.0).collect();
    let b: Vec<f64> = (0..n * n).map(|k| ((k % 7) as f64) * 0.5 - 1.5).collect();
    (a, b)
}

fn sequential(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

fn parallel(a: &[f64], b: &[f64], n: usize, block: usize, nproc: usize) -> Vec<f64> {
    let force = Force::with_machine(nproc, Machine::new(MachineId::SequentBalance));
    let c = SharedF64Array::zeroed(n * n);
    let blocks = n.div_ceil(block) as i64;
    force.run(|p| {
        // Selfscheduled over row blocks: one shared index serves the
        // whole force, exactly like the §4.2 loop.
        p.selfsched_do(ForceRange::to(0, blocks - 1), |blk| {
            let lo = (blk as usize) * block;
            let hi = (lo + block).min(n);
            for i in lo..hi {
                for k in 0..n {
                    let aik = a[i * n + k];
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        // Rows are partitioned by block, so these writes
                        // are disjoint: plain set/get is race-free.
                        c.set(i * n + j, c.get(i * n + j) + aik * b[k * n + j]);
                    }
                }
            }
        });
    });
    c.to_vec()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let block: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let (a, b) = fill(n);
    println!("matmul {n}x{n}, selfscheduled in row blocks of {block}");
    let t0 = std::time::Instant::now();
    let seq = sequential(&a, &b, n);
    println!("sequential: {:?}", t0.elapsed());

    for nproc in [1, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let par = parallel(&a, &b, n, block, nproc);
        let dt = t0.elapsed();
        let max_diff = seq
            .iter()
            .zip(par.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff == 0.0, "nproc={nproc}: max diff {max_diff}");
        println!("force of {nproc}: {dt:?}  (exact match)");
    }
    println!("OK: same product for every force size");
}
