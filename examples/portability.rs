//! The portability demonstration — the paper's headline claim, live.
//!
//! One Force-language source file is preprocessed for each of the six
//! machines the paper lists, executed on a simulated instance of that
//! machine, and verified.  The table shows how each port resolves the
//! same source onto different vendor primitives — and the machine
//! profiles show the primitives actually exercised at run time.
//!
//! ```sh
//! cargo run --example portability [nproc]
//! ```

use the_force::machdep::MachineId;
use the_force::{compile_force_source, run_force_source};

/// The demonstration program: shared/private/async variables, a barrier
/// with a section, a selfscheduled DOALL, a critical section and a
/// produce/consume handoff — every §3 construct class in ~20 lines.
const SOURCE: &str = "\
      Force FMAIN of NP ident ME
      Shared INTEGER TOTAL, NDONE
      Async INTEGER CHAN
      Private INTEGER K, T
      End declarations
      Barrier
      TOTAL = 0
      End barrier
      Selfsched DO 100 K = 1, 200
      Critical LCK
      TOTAL = TOTAL + K
      End critical
100   End selfsched DO
      IF (ME .EQ. 0) THEN
      Produce CHAN = TOTAL
      END IF
      IF (ME .EQ. NP - 1) THEN
      Consume CHAN into T
      NDONE = T
      END IF
      Join
";

fn main() {
    let nproc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let expected = 200 * 201 / 2;

    println!("The Force portability matrix — one source, six machines, force of {nproc}\n");
    println!(
        "{:<18} {:<24} {:<10} {:>8} {:>9} {:>7} {:>6} {:>12}",
        "machine",
        "lock primitive",
        "result",
        "locks",
        "contended",
        "syscall",
        "full/empty",
        "sim cycles"
    );
    println!("{}", "-".repeat(100));

    for id in MachineId::all() {
        let (expanded, _engine) = compile_force_source(SOURCE, id).expect("preprocess");
        let out = run_force_source(SOURCE, id, nproc).expect("run");
        let total = out
            .shared_scalar("TOTAL")
            .and_then(|v| v.as_int(0).ok())
            .unwrap_or(-1);
        let handed = out
            .shared_scalar("NDONE")
            .and_then(|v| v.as_int(0).ok())
            .unwrap_or(-1);
        let ok = total == expected && handed == expected;
        let s = out.stats;
        println!(
            "{:<18} {:<24} {:<10} {:>8} {:>9} {:>7} {:>6} {:>12}",
            id.name(),
            the_force::prep::machdep_macros::lock_mnemonics(
                the_force::machdep::MachineSpec::of(id).vendor_locks
            )
            .0,
            if ok { "PASS" } else { "FAIL" },
            s.lock_acquires,
            s.lock_contended,
            s.syscalls,
            s.fe_produces + s.fe_consumes,
            out.cycles,
        );
        assert!(ok, "{}: TOTAL={total} NDONE={handed}", id.name());
        // Show the two-level expansion difference on one line of code.
        let line = expanded
            .code
            .lines()
            .find(|l| l.contains("(LCK)") && l.contains("CALL") && !l.contains("ZZINITL"))
            .unwrap_or("");
        println!("{:<18}   Critical LCK  ->  {}", "", line.trim());
        if !out.linker_commands.is_empty() {
            println!(
                "{:<18}   link pass emitted {} linker commands (first: {})",
                "",
                out.linker_commands.len(),
                out.linker_commands[0]
            );
        }
        if s.padding_words > 0 {
            println!(
                "{:<18}   sharing model padded {} words to separate shared pages",
                "", s.padding_words
            );
        }
    }
    println!("\nAll six ports PASS: the source is portable; the expanded code is not.");
}
