//! Pipelined wavefront recurrence through asynchronous variables.
//!
//! The recurrence `A(i,j) = (A(i-1,j) + A(i,j-1)) / 2 + 1` has a loop-
//! carried dependence in both directions, so no DOALL applies.  The Force
//! idiom (and the HEP's signature workload) is *pipelining*: distribute
//! rows cyclically, and let the worker of row `i` chase the worker of row
//! `i-1` across the columns, synchronized by produce/consume on an
//! asynchronous progress array — one full/empty cell per row, carrying
//! "row i has finished through column c".
//!
//! Because an async variable holds one value, the producer can run at
//! most one chunk ahead of its consumer: the pipeline throttles itself
//! with no explicit flow control.
//!
//! ```sh
//! cargo run --release --example wavefront [n] [chunk]
//! ```

use the_force::prelude::*;

fn sequential(n: usize) -> Vec<f64> {
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        a[i * n] = i as f64;
        a[i] = i as f64;
    }
    for i in 1..n {
        for j in 1..n {
            a[i * n + j] = (a[(i - 1) * n + j] + a[i * n + j - 1]) / 2.0 + 1.0;
        }
    }
    a
}

fn parallel(n: usize, nproc: usize, chunk: usize, machine: MachineId) -> Vec<f64> {
    let force = Force::with_machine(nproc, Machine::new(machine));
    let a = SharedF64Matrix::zeroed(n, n);
    // progress[i] carries "row i is complete through column <value>".
    let progress: AsyncArray<i64> = AsyncArray::new(force.machine(), n);
    force.run(|p| {
        // Borders, then a barrier before the wavefront starts.
        p.presched_do(ForceRange::to(0, n as i64 - 1), |i| {
            a.set(i as usize, 0, i as f64);
            a.set(0, i as usize, i as f64);
        });
        // Rows distributed cyclically; each worker sweeps its row in
        // column chunks, consuming the predecessor row's progress and
        // producing its own.
        let me = p.pid();
        let nproc = p.nproc();
        let mut row = me + 1; // row 0 is boundary
        while row < n {
            let mut col = 1usize;
            while col < n {
                let hi = (col + chunk).min(n);
                if row > 1 {
                    // Wait until row-1 has passed column hi-1.
                    loop {
                        let done = progress.consume(row - 1);
                        if done as usize >= hi - 1 {
                            // put it back for our own later chunks
                            progress.produce(row - 1, done);
                            break;
                        }
                        progress.produce(row - 1, done);
                        std::hint::spin_loop();
                    }
                }
                for j in col..hi {
                    let v = (a.get(row - 1, j) + a.get(row, j - 1)) / 2.0 + 1.0;
                    a.set(row, j, v);
                }
                // Publish our progress (replace the old value).
                if row < n - 1 {
                    if col > 1 {
                        let _ = progress.consume(row);
                    }
                    progress.produce(row, (hi - 1) as i64);
                }
                col = hi;
            }
            row += nproc;
        }
        p.barrier();
    });
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = a.get(i, j);
        }
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let chunk: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("wavefront recurrence on an {n}x{n} grid, column chunks of {chunk}");
    let seq = sequential(n);
    for machine in [MachineId::Hep, MachineId::EncoreMultimax] {
        for nproc in [1usize, 2, 4] {
            let t = std::time::Instant::now();
            let par = parallel(n, nproc, chunk, machine);
            let dt = t.elapsed();
            let max_diff = seq
                .iter()
                .zip(par.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            assert_eq!(max_diff, 0.0, "{} nproc={nproc}", machine.name());
            println!("{:<18} force of {nproc}: {dt:?} (exact)", machine.name());
        }
    }
    println!("OK: the pipelined wavefront equals the sequential recurrence everywhere");
}
