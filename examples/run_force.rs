//! `run_force` — the `forcecompile && a.out` of this reproduction.
//!
//! Preprocess a Force-language source file for a chosen machine
//! personality, run it with a force of N processes, and print the
//! program's output plus the machine profile.
//!
//! ```sh
//! cargo run --example run_force -- examples/force_src/sum.force
//! cargo run --example run_force -- examples/force_src/pipeline.force --machine hep --nproc 4
//! cargo run --example run_force -- prog.force --emit          # show expanded code
//! cargo run --example run_force -- prog.force --intermediate  # show the §4.2 form
//! ```

use the_force::machdep::MachineId;
use the_force::{compile_force_source, run_force_source};

fn usage() -> ! {
    eprintln!(
        "usage: run_force <file.force> [--machine hep|flex32|encore|sequent|alliant|cray2]\n\
         \x20                           [--nproc N] [--emit] [--intermediate]"
    );
    std::process::exit(2);
}

fn main() {
    let mut file = None;
    let mut machine = MachineId::EncoreMultimax;
    let mut nproc = 4usize;
    let mut emit = false;
    let mut intermediate = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machine" => {
                let tag = args.next().unwrap_or_else(|| usage());
                machine = MachineId::from_tag(&tag).unwrap_or_else(|| {
                    eprintln!("unknown machine `{tag}`");
                    usage()
                });
            }
            "--nproc" => {
                nproc = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--emit" => emit = true,
            "--intermediate" => intermediate = true,
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }
    let file = file.unwrap_or_else(|| usage());
    let source = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(1);
    });

    if emit || intermediate {
        match compile_force_source(&source, machine) {
            Ok((expanded, _)) => {
                if intermediate {
                    println!("{}", expanded.intermediate);
                } else {
                    println!("{}", expanded.code);
                }
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "running {file} on the {} with a force of {nproc} processes",
        machine.name()
    );
    match run_force_source(&source, machine, nproc) {
        Ok(out) => {
            for line in &out.prints {
                println!("| {line}");
            }
            let s = &out.stats;
            println!(
                "machine profile: {} lock ops, {} syscalls, {} full/empty ops, {} sim cycles",
                s.lock_acquires + s.lock_releases,
                s.syscalls,
                s.fe_produces + s.fe_consumes,
                out.cycles
            );
            if !out.linker_commands.is_empty() {
                println!(
                    "link pass emitted {} linker commands",
                    out.linker_commands.len()
                );
            }
        }
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(1);
        }
    }
}
