//! Quickstart: a tour of the native Force API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The Force model in five sentences: a *force* of processes executes the
//! whole program (global parallelism).  Work is distributed over the
//! force by constructs (DOALL, Pcase, Askfor), never assigned to named
//! processes.  Variables are *shared* (captured by the program closure)
//! or *private* (the closure's locals).  Synchronization is *generic* —
//! barriers, critical sections and full/empty asynchronous variables name
//! no processes.  A correct Force program runs with any number of
//! processes.

use std::sync::atomic::{AtomicU64, Ordering};

use the_force::prelude::*;

fn main() {
    // A force of processes on a simulated Encore Multimax.  Every one of
    // the paper's six machines is available; the program text does not
    // change.
    let machine = Machine::new(MachineId::EncoreMultimax);
    let force = Force::with_machine(4, machine);
    println!(
        "force of {} processes on the {}",
        force.nproc(),
        force.machine().id().name()
    );

    // Shared variables are what the program closure captures.
    let sum = AtomicU64::new(0);
    let histogram = SharedF64Array::zeroed(10);

    force.run(|p| {
        // -- selfscheduled DOALL: dynamic work distribution ----------
        p.selfsched_do(ForceRange::to(1, 1000), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });

        // -- barrier with a section: one process reports -------------
        p.barrier_section(|| {
            println!("sum 1..1000 = {}", sum.load(Ordering::Relaxed));
        });

        // -- prescheduled DOALL: static cyclic distribution ----------
        p.presched_do(ForceRange::to(0, 9), |i| {
            histogram.set(i as usize, (i * i) as f64);
        });

        // -- critical section: named mutual exclusion ----------------
        p.critical("REPORT", || {
            // at most one process in here at a time
        });

        // -- Pcase: independent code sections over the force ---------
        p.pcase()
            .sect(|| println!("section A (one process runs this)"))
            .sect(|| println!("section B (maybe a different process)"))
            .csect(false, || println!("never: condition is false"))
            .selfsched();

        // -- Askfor: work whose amount is unknown at compile time ----
        let leaves = AtomicU64::new(0);
        p.askfor(
            || vec![16u64],
            |n, pot| {
                if n > 1 {
                    pot.post(n / 2);
                    pot.post(n - n / 2);
                } else {
                    leaves.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        p.barrier_section(|| {
            println!(
                "askfor split 16 into {} unit leaves",
                leaves.load(Ordering::Relaxed)
            );
        });
    });

    // -- asynchronous variables: produce/consume dataflow ------------
    let force2 = Force::with_machine(2, Machine::new(MachineId::Hep));
    let chan: Async<u64> = Async::new(force2.machine());
    let received = AtomicU64::new(0);
    force2.run(|p| {
        if p.pid() == 0 {
            for i in 1..=5 {
                chan.produce(i * 11);
            }
        } else {
            for _ in 0..5 {
                received.fetch_add(chan.consume(), Ordering::Relaxed);
            }
        }
    });
    println!(
        "pipeline moved {} through a HEP hardware full/empty cell",
        received.load(Ordering::Relaxed)
    );

    // The machine kept score of the primitives used:
    let snap = force.machine().stats().snapshot();
    println!(
        "machine profile: {} lock acquires, {} barrier episodes, {} processes created",
        snap.lock_acquires, snap.barrier_episodes, snap.processes_created
    );
}
