//! A HEP-style dataflow pipeline: sieve of Eratosthenes through
//! asynchronous variables.
//!
//! Each process of the force is one pipeline stage holding one prime;
//! stages are connected by `Async` full/empty channels, so every handoff
//! is a Produce/Consume pair — on the simulated HEP these are single
//! hardware full/empty accesses, on every other machine the two-lock
//! protocol of §4.2.  The structure mirrors the producer/consumer style
//! the HEP's hardware was built for.
//!
//! ```sh
//! cargo run --example pipeline_sieve [stages]
//! ```

use std::sync::atomic::{AtomicI64, Ordering};

use the_force::prelude::*;

const END: i64 = -1; // end-of-stream marker

fn sieve(stages: usize, machine: MachineId) -> Vec<i64> {
    let force = Force::with_machine(stages + 1, Machine::new(machine));
    // Channel i feeds stage i (stage 0 is fed by the generator).
    let chans: Vec<Async<i64>> = (0..stages + 1)
        .map(|_| Async::new(force.machine()))
        .collect();
    let primes: Vec<AtomicI64> = (0..stages).map(|_| AtomicI64::new(0)).collect();

    force.run(|p| {
        let id = p.pid();
        if id == 0 {
            // Generator: feed odd candidates (and 2) until every stage
            // holds a prime, then flush the end marker.
            chans[0].produce(2);
            let mut n = 3;
            loop {
                // Stop once the last stage has latched its prime.
                if primes[stages - 1].load(Ordering::Acquire) != 0 {
                    break;
                }
                chans[0].produce(n);
                n += 2;
            }
            chans[0].produce(END);
        } else {
            // Stage id-1: first number received is this stage's prime;
            // everything not divisible by it flows to the next stage.
            let stage = id - 1;
            let prime = chans[stage].consume();
            if prime == END {
                chans[stage + 1].produce(END);
                return;
            }
            primes[stage].store(prime, Ordering::Release);
            loop {
                let n = chans[stage].consume();
                if n == END {
                    chans[stage + 1].produce(END);
                    return;
                }
                if n % prime != 0 {
                    // Forward to the next stage; the last stage drops
                    // survivors (it only needed its own prime).
                    if stage + 1 < stages {
                        chans[stage + 1].produce(n);
                    }
                }
            }
        }
    });

    primes.iter().map(|p| p.load(Ordering::Relaxed)).collect()
}

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let expected = [2i64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
    for machine in [MachineId::Hep, MachineId::Flex32] {
        let t0 = std::time::Instant::now();
        let primes = sieve(stages, machine);
        let dt = t0.elapsed();
        println!(
            "{:<18} first {stages} primes: {:?}  ({dt:?})",
            machine.name(),
            primes
        );
        assert_eq!(&primes[..], &expected[..stages.min(expected.len())]);
    }
    println!("OK: the pipeline computes the same primes on hardware full/empty and on two-lock emulation");
}
